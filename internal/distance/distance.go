// Package distance implements distance-based phylogenetics: pairwise
// evolutionary distance estimation from alignments (Jukes-Cantor corrected)
// and the neighbor-joining tree construction algorithm (Saitou & Nei 1987).
// NJ trees are the classic alternative starting point to the randomized
// parsimony trees RAxML uses, and a standard substrate of any phylogenetics
// library.
package distance

import (
	"fmt"
	"math"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/bio"
	"raxmlcell/internal/phylotree"
)

// Matrix is a symmetric pairwise distance matrix with taxon names.
type Matrix struct {
	Names []string
	D     [][]float64
}

// NewMatrix allocates a zero matrix over the given taxa.
func NewMatrix(names []string) *Matrix {
	d := make([][]float64, len(names))
	for i := range d {
		d[i] = make([]float64, len(names))
	}
	return &Matrix{Names: append([]string(nil), names...), D: d}
}

// Set stores a symmetric entry.
func (m *Matrix) Set(i, j int, v float64) {
	m.D[i][j] = v
	m.D[j][i] = v
}

// maxJCDistance caps the correction when sequences approach saturation
// (p >= 3/4 makes the JC log diverge).
const maxJCDistance = 5.0

// JukesCantor estimates pairwise distances d = -3/4 ln(1 - 4p/3) from the
// proportion p of mismatching sites, counting only positions where both
// sequences carry unambiguous bases, weighted by pattern multiplicity.
func JukesCantor(pat *alignment.Patterns) (*Matrix, error) {
	if pat == nil || pat.NumTaxa < 2 {
		return nil, fmt.Errorf("distance: need >= 2 taxa")
	}
	m := NewMatrix(pat.Names)
	n := pat.NumTaxa
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			diff, total := 0, 0
			ri, rj := pat.Data[i], pat.Data[j]
			for k := range ri {
				ci, cj := ri[k], rj[k]
				if bio.IsAmbiguous(ci) || bio.IsAmbiguous(cj) || ci == 0 || cj == 0 {
					continue
				}
				w := pat.Weights[k]
				total += w
				if ci != cj {
					diff += w
				}
			}
			if total == 0 {
				m.Set(i, j, maxJCDistance)
				continue
			}
			p := float64(diff) / float64(total)
			if p >= 0.75 {
				m.Set(i, j, maxJCDistance)
				continue
			}
			d := -0.75 * math.Log(1-4*p/3)
			if d > maxJCDistance {
				d = maxJCDistance
			}
			m.Set(i, j, d)
		}
	}
	return m, nil
}

// NeighborJoining builds an unrooted binary tree from the distance matrix
// with the Saitou-Nei algorithm: repeatedly join the pair minimizing the
// Q criterion, assigning branch lengths by the standard formulas (negative
// estimates clamped to the minimum branch length).
func NeighborJoining(m *Matrix) (*phylotree.Tree, error) {
	n := len(m.Names)
	if n < 3 {
		return nil, fmt.Errorf("distance: NJ needs >= 3 taxa, got %d", n)
	}
	tr, err := phylotree.NewTree(m.Names)
	if err != nil {
		return nil, err
	}

	// Working state: active cluster list; each cluster is represented by a
	// detached directed record ready to be connected upward, plus a row of
	// the evolving distance matrix.
	type cluster struct {
		attach *phylotree.Node // record to connect to the joining node
	}
	active := make([]cluster, n)
	for i := 0; i < n; i++ {
		active[i] = cluster{attach: tr.Tips[i]}
	}
	// Copy the distance matrix (it shrinks as clusters merge).
	d := make([][]float64, n)
	for i := range d {
		d[i] = append([]float64(nil), m.D[i]...)
	}

	joinZ := func(v float64) float64 {
		if v < phylotree.MinBranchLength {
			return phylotree.MinBranchLength
		}
		return v
	}

	for len(active) > 3 {
		k := len(active)
		// Row sums.
		r := make([]float64, k)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				r[i] += d[i][j]
			}
		}
		// Minimize Q(i,j) = (k-2) d(i,j) - r_i - r_j.
		bi, bj := 0, 1
		best := math.Inf(1)
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				q := float64(k-2)*d[i][j] - r[i] - r[j]
				if q < best {
					best, bi, bj = q, i, j
				}
			}
		}
		// Branch lengths from the joined pair to the new node.
		zi := 0.5*d[bi][bj] + (r[bi]-r[bj])/(2*float64(k-2))
		zj := d[bi][bj] - zi

		u := tr.NewInternalRing()
		ring := u.Ring()
		phylotree.Connect(ring[1], active[bi].attach, joinZ(zi))
		phylotree.Connect(ring[2], active[bj].attach, joinZ(zj))

		// Distances from the new cluster to the rest.
		newRow := make([]float64, 0, k-1)
		var rest []cluster
		var restIdx []int
		for x := 0; x < k; x++ {
			if x == bi || x == bj {
				continue
			}
			newRow = append(newRow, 0.5*(d[bi][x]+d[bj][x]-d[bi][bj]))
			rest = append(rest, active[x])
			restIdx = append(restIdx, x)
		}
		// Rebuild the matrix with the new cluster appended last.
		k2 := len(rest) + 1
		nd := make([][]float64, k2)
		for i := range nd {
			nd[i] = make([]float64, k2)
		}
		for i := 0; i < len(rest); i++ {
			for j := 0; j < len(rest); j++ {
				nd[i][j] = d[restIdx[i]][restIdx[j]]
			}
			nd[i][k2-1] = newRow[i]
			nd[k2-1][i] = newRow[i]
		}
		d = nd
		active = append(rest, cluster{attach: ring[0]})
	}

	// Final three clusters join at one internal node with the standard
	// three-point formulas.
	u := tr.NewInternalRing()
	ring := u.Ring()
	za := 0.5 * (d[0][1] + d[0][2] - d[1][2])
	zb := 0.5 * (d[0][1] + d[1][2] - d[0][2])
	zc := 0.5 * (d[0][2] + d[1][2] - d[0][1])
	phylotree.Connect(ring[0], active[0].attach, joinZ(za))
	phylotree.Connect(ring[1], active[1].attach, joinZ(zb))
	phylotree.Connect(ring[2], active[2].attach, joinZ(zc))

	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("distance: NJ produced an invalid tree: %w", err)
	}
	return tr, nil
}
