package bench

import (
	"math"
	"strings"
	"testing"

	"raxmlcell/internal/cellrt"
)

func TestStageTableAgainstPaper(t *testing.T) {
	cfg := DefaultConfig()
	for stage := cellrt.StagePPEOnly; stage < cellrt.NumStages; stage++ {
		exp, err := StageTable(cfg, stage)
		if err != nil {
			t.Fatal(err)
		}
		if len(exp.Rows) != 4 {
			t.Fatalf("%s: %d rows", exp.ID, len(exp.Rows))
		}
		for _, r := range exp.Rows {
			if dev := math.Abs(r.Deviation()); dev > 0.20 {
				t.Errorf("%s %q: %.1f%% off paper", exp.ID, r.Label, 100*dev)
			}
		}
	}
}

func TestMGPSTableAgainstPaper(t *testing.T) {
	exp, err := MGPSTable(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range exp.Rows {
		if dev := math.Abs(r.Deviation()); dev > 0.20 {
			t.Errorf("table8 %q: %.1f%% off paper", r.Label, 100*dev)
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	// The published claims: Cell beats Power5 by ~9-10% and the Xeon pair
	// by more than a factor of two, at every bootstrap count.
	pts, err := Figure3(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.Cell >= p.Power5 {
			t.Errorf("bs=%d: Cell (%.1fs) not faster than Power5 (%.1fs)", p.Bootstraps, p.Cell, p.Power5)
		}
		if r := p.Xeon / p.Cell; r < 2 {
			t.Errorf("bs=%d: Xeon/Cell = %.2f, paper says > 2", p.Bootstraps, r)
		}
		if r := p.Power5 / p.Cell; r > 1.35 {
			t.Errorf("bs=%d: Power5/Cell = %.2f, paper says ~1.09-1.10", p.Bootstraps, r)
		}
	}
	// Aggregate Power5 margin near the published 9-10%.
	sumC, sumP := 0.0, 0.0
	for _, p := range pts {
		sumC += p.Cell
		sumP += p.Power5
	}
	if margin := sumP/sumC - 1; margin < 0.03 || margin > 0.30 {
		t.Errorf("aggregate Power5 margin = %.1f%%, paper ~9-10%%", 100*margin)
	}
	// Monotone growth in bootstraps.
	for i := 1; i < len(pts); i++ {
		if pts[i].Cell < pts[i-1].Cell {
			t.Error("Cell series not monotone")
		}
	}
}

func TestFactorOfFiveClaim(t *testing.T) {
	// Conclusions: "we were able to boost performance on Cell by more than
	// a factor of five" — naive offloaded port versus MGPS at scale.
	cfg := DefaultConfig()
	naive, err := StageTable(cfg, cellrt.StageNaiveOffload)
	if err != nil {
		t.Fatal(err)
	}
	mgps, err := MGPSTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the 1-bootstrap cells.
	ratio := naive.Rows[0].Simulated / mgps.Rows[0].Simulated
	if ratio < 5 {
		t.Errorf("naive/MGPS = %.2fx, paper claims > 5x", ratio)
	}
}

func TestSchedulerCrossoverClaim(t *testing.T) {
	// Contribution III: three layers of parallelism (LLP) win at low
	// task-level parallelism (<= 4 searches), two layers (EDTLP) win at
	// scale, and the dynamic MGPS tracks the better of the two everywhere.
	pts, err := SchedulerCrossover(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		best := math.Min(p.EDTLP, p.LLP)
		switch {
		case p.Searches <= 2:
			if p.LLP >= p.EDTLP {
				t.Errorf("searches=%d: LLP (%.1fs) not better than EDTLP (%.1fs)", p.Searches, p.LLP, p.EDTLP)
			}
		case p.Searches >= 8:
			if p.EDTLP >= p.LLP {
				t.Errorf("searches=%d: EDTLP (%.1fs) not better than LLP (%.1fs)", p.Searches, p.EDTLP, p.LLP)
			}
		}
		// MGPS pays dynamic-scheduling overhead (switch-on-offload) that an
		// idealized static schedule avoids, so it may trail the better
		// static model somewhat — but it must always clearly beat the
		// *wrong* static choice, which is its reason to exist.
		worst := math.Max(p.EDTLP, p.LLP)
		if p.MGPS > best*1.45 {
			t.Errorf("searches=%d: MGPS (%.1fs) far off the better static model (%.1fs)",
				p.Searches, p.MGPS, best)
		}
		if worst > best*1.2 && p.MGPS > worst*0.95 {
			t.Errorf("searches=%d: MGPS (%.1fs) no better than the wrong static choice (%.1fs)",
				p.Searches, p.MGPS, worst)
		}
	}
}

func TestFormatAndAll(t *testing.T) {
	cfg := DefaultConfig()
	exps, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 10 { // 8 stage tables + table8 + figure3
		t.Fatalf("%d experiments", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		ids[e.ID] = true
		s := e.Format()
		if !strings.Contains(s, e.ID) || !strings.Contains(s, "s") {
			t.Errorf("format of %s malformed:\n%s", e.ID, s)
		}
	}
	for _, want := range []string{"table1a", "table1b", "table2", "table3", "table4",
		"table5", "table6", "table7", "table8", "figure3"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}
