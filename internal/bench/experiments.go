// Package bench regenerates every table and figure of the paper's
// evaluation: Tables 1a/1b through 8 (the staged optimization of RAxML on
// the simulated Cell) and Figure 3 (Cell versus IBM Power5 and Intel Xeon).
// Each Experiment prints the same rows the paper reports, side by side with
// the published values, and checks the qualitative shape criteria listed in
// DESIGN.md.
package bench

import (
	"fmt"
	"strings"

	"raxmlcell/internal/cell"
	"raxmlcell/internal/cellrt"
	"raxmlcell/internal/platform"
	"raxmlcell/internal/workload"
)

// Row is one line of a reproduced table.
type Row struct {
	Label     string
	Simulated float64 // seconds
	Paper     float64 // seconds; 0 when the paper gives no tabulated number
}

// Deviation returns the relative difference to the paper value.
func (r Row) Deviation() float64 {
	if r.Paper == 0 {
		return 0
	}
	return (r.Simulated - r.Paper) / r.Paper
}

// Experiment is one reproduced table or figure.
type Experiment struct {
	ID    string // "table1a" ... "table8", "figure3"
	Title string
	Rows  []Row
}

// Format renders the experiment in the paper's row layout.
func (e *Experiment) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", e.ID, e.Title)
	for _, r := range e.Rows {
		if r.Paper > 0 {
			fmt.Fprintf(&b, "  %-36s %9.2fs   (paper: %8.2fs, %+5.1f%%)\n",
				r.Label, r.Simulated, r.Paper, 100*r.Deviation())
		} else {
			fmt.Fprintf(&b, "  %-36s %9.2fs\n", r.Label, r.Simulated)
		}
	}
	return b.String()
}

// PaperStageTimes holds the published Tables 1a-7 (seconds) over the rows
// (1 worker, 1 bootstrap), (2, 8), (2, 16), (2, 32).
var PaperStageTimes = map[cellrt.Stage][4]float64{
	cellrt.StagePPEOnly:      {36.9, 207.67, 427.95, 824},
	cellrt.StageNaiveOffload: {106.37, 459.16, 915.75, 1836.6},
	cellrt.StageSDKExp:       {62.8, 285.25, 572.92, 1138.5},
	cellrt.StageVectorCond:   {49.3, 230, 460.43, 917.09},
	cellrt.StageDoubleBuffer: {47, 220.92, 441.39, 884.47},
	cellrt.StageVectorFP:     {40.9, 195.7, 393, 800.9},
	cellrt.StageDirectComm:   {39.9, 180.46, 357.08, 712.2},
	cellrt.StageAllOffloaded: {27.7, 112.41, 224.69, 444.87},
}

// PaperMGPSTimes is Table 8 (seconds) at 1, 8, 16 and 32 bootstraps.
var PaperMGPSTimes = [4]float64{17.6, 42.18, 84.21, 167.57}

// stageTableIDs maps stages to the paper's table numbers.
var stageTableIDs = map[cellrt.Stage]string{
	cellrt.StagePPEOnly:      "table1a",
	cellrt.StageNaiveOffload: "table1b",
	cellrt.StageSDKExp:       "table2",
	cellrt.StageVectorCond:   "table3",
	cellrt.StageDoubleBuffer: "table4",
	cellrt.StageVectorFP:     "table5",
	cellrt.StageDirectComm:   "table6",
	cellrt.StageAllOffloaded: "table7",
}

var stageTableTitles = map[cellrt.Stage]string{
	cellrt.StagePPEOnly:      "Whole application on the PPE",
	cellrt.StageNaiveOffload: "newview() offloaded naively to one SPE",
	cellrt.StageSDKExp:       "+ SDK numerical exp()",
	cellrt.StageVectorCond:   "+ casted and vectorized conditionals",
	cellrt.StageDoubleBuffer: "+ double buffering of DMA transfers",
	cellrt.StageVectorFP:     "+ vectorized floating point loops",
	cellrt.StageDirectComm:   "+ direct memory-to-memory communication",
	cellrt.StageAllOffloaded: "newview(), makenewz() and evaluate() offloaded",
}

var tableGrid = [4]struct {
	workers, bootstraps int
}{
	{1, 1}, {2, 8}, {2, 16}, {2, 32},
}

// Config bundles the simulation inputs shared by all experiments.
type Config struct {
	Profile workload.Profile
	Cost    cell.CostModel
	Params  cell.Params
}

// DefaultConfig uses the 42_SC workload on the paper's blade configuration.
func DefaultConfig() Config {
	return Config{
		Profile: workload.Profile42SC(),
		Cost:    cell.DefaultCostModel(),
		Params:  cell.DefaultParams(),
	}
}

// StageTable reproduces one of Tables 1a-7.
func StageTable(cfg Config, stage cellrt.Stage) (*Experiment, error) {
	exp := &Experiment{ID: stageTableIDs[stage], Title: stageTableTitles[stage]}
	paper := PaperStageTimes[stage]
	for i, g := range tableGrid {
		rep, err := cellrt.Run(cfg.Profile, cfg.Cost, cfg.Params, cellrt.Config{
			Stage:     stage,
			Scheduler: cellrt.SchedNaive,
			Workers:   g.workers,
			Searches:  g.bootstraps,
		})
		if err != nil {
			return nil, err
		}
		exp.Rows = append(exp.Rows, Row{
			Label:     fmt.Sprintf("%d worker(s), %d bootstrap(s)", g.workers, g.bootstraps),
			Simulated: rep.Seconds,
			Paper:     paper[i],
		})
	}
	return exp, nil
}

// MGPSTable reproduces Table 8 (the dynamic multi-grain scheduler).
func MGPSTable(cfg Config) (*Experiment, error) {
	exp := &Experiment{ID: "table8", Title: "MGPS dynamic parallelization"}
	for i, bs := range []int{1, 8, 16, 32} {
		rep, err := cellrt.Run(cfg.Profile, cfg.Cost, cfg.Params, cellrt.Config{
			Stage:     cellrt.StageAllOffloaded,
			Scheduler: cellrt.SchedMGPS,
			Searches:  bs,
		})
		if err != nil {
			return nil, err
		}
		exp.Rows = append(exp.Rows, Row{
			Label:     fmt.Sprintf("%d bootstrap(s)", bs),
			Simulated: rep.Seconds,
			Paper:     PaperMGPSTimes[i],
		})
	}
	return exp, nil
}

// Figure3Point is one (bootstraps, platform) sample of Figure 3.
type Figure3Point struct {
	Bootstraps int
	Cell       float64
	Power5     float64
	Xeon       float64
}

// Figure3 regenerates the platform comparison: Cell under MGPS (simulated)
// against the analytic Power5 and Xeon models, at the paper's bootstrap
// counts 1, 8, 16, 32, 64, 128.
func Figure3(cfg Config) ([]Figure3Point, error) {
	xeon, p5 := platform.Xeon2GHzPair(), platform.Power5()
	var out []Figure3Point
	for _, bs := range []int{1, 8, 16, 32, 64, 128} {
		rep, err := cellrt.Run(cfg.Profile, cfg.Cost, cfg.Params, cellrt.Config{
			Stage:     cellrt.StageAllOffloaded,
			Scheduler: cellrt.SchedMGPS,
			Searches:  bs,
		})
		if err != nil {
			return nil, err
		}
		px, err := xeon.Makespan(bs)
		if err != nil {
			return nil, err
		}
		pp, err := p5.Makespan(bs)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure3Point{Bootstraps: bs, Cell: rep.Seconds, Power5: pp, Xeon: px})
	}
	return out, nil
}

// Figure3Experiment formats the Figure 3 series as an Experiment (one row
// per bootstrap count and machine) for uniform reporting.
func Figure3Experiment(cfg Config) (*Experiment, error) {
	pts, err := Figure3(cfg)
	if err != nil {
		return nil, err
	}
	exp := &Experiment{ID: "figure3", Title: "Cell (MGPS) vs IBM Power5 vs Intel Xeon"}
	for _, p := range pts {
		exp.Rows = append(exp.Rows,
			Row{Label: fmt.Sprintf("%3d bootstraps  Cell", p.Bootstraps), Simulated: p.Cell},
			Row{Label: fmt.Sprintf("%3d bootstraps  Power5", p.Bootstraps), Simulated: p.Power5},
			Row{Label: fmt.Sprintf("%3d bootstraps  Xeon (2 procs)", p.Bootstraps), Simulated: p.Xeon},
		)
	}
	return exp, nil
}

// SchedulerCrossoverPoint is one task-parallelism degree in the
// two-vs-three-layers comparison of the paper's Contribution III.
type SchedulerCrossoverPoint struct {
	Searches int
	EDTLP    float64 // two layers: task-level + vectorization
	LLP      float64 // three layers: + loop-level distribution
	MGPS     float64 // dynamic hybrid
}

// SchedulerCrossover reproduces Contribution III: "two layers of
// parallelism being more beneficial for large and realistic workloads and
// three layers ... for workloads with a low degree (<= 4) of task-level
// parallelism". It sweeps the number of concurrent tree searches and times
// each scheduling model.
func SchedulerCrossover(cfg Config) ([]SchedulerCrossoverPoint, error) {
	var out []SchedulerCrossoverPoint
	for _, searches := range []int{1, 2, 4, 8, 16, 32} {
		run := func(s cellrt.Scheduler, workers int) (float64, error) {
			rep, err := cellrt.Run(cfg.Profile, cfg.Cost, cfg.Params, cellrt.Config{
				Stage:     cellrt.StageAllOffloaded,
				Scheduler: s,
				Workers:   workers,
				Searches:  searches,
			})
			if err != nil {
				return 0, err
			}
			return rep.Seconds, nil
		}
		edtlpWorkers := cfg.Params.NumSPE
		if searches < edtlpWorkers {
			edtlpWorkers = searches
		}
		llpWorkers := searches
		if max := cfg.Params.NumSPE / 2; llpWorkers > max {
			llpWorkers = max
		}
		e, err := run(cellrt.SchedEDTLP, edtlpWorkers)
		if err != nil {
			return nil, err
		}
		l, err := run(cellrt.SchedLLP, llpWorkers)
		if err != nil {
			return nil, err
		}
		m, err := run(cellrt.SchedMGPS, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, SchedulerCrossoverPoint{Searches: searches, EDTLP: e, LLP: l, MGPS: m})
	}
	return out, nil
}

// AllStages runs every staged table in order.
func AllStages(cfg Config) ([]*Experiment, error) {
	var out []*Experiment
	for stage := cellrt.StagePPEOnly; stage < cellrt.NumStages; stage++ {
		exp, err := StageTable(cfg, stage)
		if err != nil {
			return nil, err
		}
		out = append(out, exp)
	}
	return out, nil
}

// All reproduces the complete evaluation: Tables 1a-8 plus Figure 3.
func All(cfg Config) ([]*Experiment, error) {
	out, err := AllStages(cfg)
	if err != nil {
		return nil, err
	}
	t8, err := MGPSTable(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, t8)
	f3, err := Figure3Experiment(cfg)
	if err != nil {
		return nil, err
	}
	return append(out, f3), nil
}
