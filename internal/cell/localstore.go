package cell

import (
	"fmt"
	"maps"
	"slices"
)

// LocalStore is the 256 KB software-managed memory of an SPE, used as a
// unified instruction and data store. The paper's port loads a single
// 117 KB code module with all three offloaded functions, leaving 139 KB for
// stack, heap, buffers and the strip-mining DMA windows; this allocator
// enforces exactly that accounting.
type LocalStore struct {
	size     int
	used     int
	segments map[string]int
}

// NewLocalStore creates an empty local store of the given size.
func NewLocalStore(size int) *LocalStore {
	return &LocalStore{size: size, segments: make(map[string]int)}
}

// Alloc reserves a named segment, failing when the store would overflow —
// the constraint that forces strip-mining of the likelihood vectors and
// forbids arbitrary function offloading.
func (ls *LocalStore) Alloc(name string, bytes int) error {
	if bytes <= 0 {
		return fmt.Errorf("cell: allocation %q of %d bytes", name, bytes)
	}
	if _, exists := ls.segments[name]; exists {
		return fmt.Errorf("cell: segment %q already allocated", name)
	}
	if ls.used+bytes > ls.size {
		return fmt.Errorf("cell: local store overflow: %q needs %d bytes, %d free of %d",
			name, bytes, ls.size-ls.used, ls.size)
	}
	ls.segments[name] = bytes
	ls.used += bytes
	return nil
}

// Free releases a named segment.
func (ls *LocalStore) Free(name string) error {
	bytes, ok := ls.segments[name]
	if !ok {
		return fmt.Errorf("cell: segment %q not allocated", name)
	}
	delete(ls.segments, name)
	ls.used -= bytes
	return nil
}

// Used reports the allocated byte count.
func (ls *LocalStore) Used() int { return ls.used }

// Free bytes remaining.
func (ls *LocalStore) Available() int { return ls.size - ls.used }

// Size is the total capacity.
func (ls *LocalStore) Size() int { return ls.size }

// Segments lists allocations in name order (for diagnostics). Iteration
// goes over sorted keys, never the raw map, so output order is independent
// of Go's randomized map iteration (the simdeterminism invariant).
func (ls *LocalStore) Segments() []string {
	out := make([]string, 0, len(ls.segments))
	for _, name := range slices.Sorted(maps.Keys(ls.segments)) {
		out = append(out, fmt.Sprintf("%s:%d", name, ls.segments[name]))
	}
	return out
}
