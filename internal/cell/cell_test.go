package cell

import (
	"strings"
	"testing"

	"raxmlcell/internal/sim"
)

func testMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	p := DefaultParams()
	p.NumSPE = 0
	if _, err := New(p); err == nil {
		t.Error("0 SPEs accepted")
	}
	p = DefaultParams()
	p.ClockHz = 0
	if _, err := New(p); err == nil {
		t.Error("0 clock accepted")
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.NumSPE != 8 || p.PPEThreads != 2 {
		t.Errorf("core counts: %d SPEs, %d PPE threads", p.NumSPE, p.PPEThreads)
	}
	if p.LocalStoreBytes != 256*1024 {
		t.Errorf("local store = %d", p.LocalStoreBytes)
	}
	if p.DMAMaxBytes != 16*1024 || p.DMAListMax != 2048 {
		t.Errorf("DMA limits: %d bytes, %d list entries", p.DMAMaxBytes, p.DMAListMax)
	}
	if p.MailboxEntries != 4 || p.EIBRings != 4 {
		t.Errorf("mailbox %d entries, EIB %d rings", p.MailboxEntries, p.EIBRings)
	}
	if p.ClockHz != 3.2e9 {
		t.Errorf("clock = %g", p.ClockHz)
	}
	// EIB aggregate: 4 rings x 24 B/cycle x 3.2 GHz = 96 B/cycle = 307 GB/s
	// raw; the paper quotes 204.8 GB/s sustained — our per-ring figure is
	// within the right order.
	if p.EIBBytesPerRing*float64(p.EIBRings) != 96 {
		t.Errorf("EIB bytes/cycle = %g", p.EIBBytesPerRing*float64(p.EIBRings))
	}
}

func TestSecondsCycles(t *testing.T) {
	m := testMachine(t)
	if got := m.Seconds(3_200_000_000); got != 1.0 {
		t.Errorf("Seconds(3.2e9) = %v", got)
	}
	if got := m.Cycles(0.5); got != 1_600_000_000 {
		t.Errorf("Cycles(0.5) = %v", got)
	}
}

func TestLocalStoreAccounting(t *testing.T) {
	ls := NewLocalStore(256 * 1024)
	// The paper's code module: 117 KB, leaving 139 KB.
	if err := ls.Alloc("code", 117*1024); err != nil {
		t.Fatal(err)
	}
	if ls.Available() != 139*1024 {
		t.Errorf("available = %d, want %d", ls.Available(), 139*1024)
	}
	if err := ls.Alloc("buffers", 2*2048); err != nil {
		t.Fatal(err)
	}
	if err := ls.Alloc("too-big", 200*1024); err == nil {
		t.Error("overflow allocation accepted")
	}
	if err := ls.Alloc("code", 1); err == nil {
		t.Error("duplicate segment accepted")
	}
	if err := ls.Free("buffers"); err != nil {
		t.Fatal(err)
	}
	if err := ls.Free("buffers"); err == nil {
		t.Error("double free accepted")
	}
	if ls.Used() != 117*1024 {
		t.Errorf("used = %d", ls.Used())
	}
	segs := ls.Segments()
	if len(segs) != 1 || !strings.HasPrefix(segs[0], "code:") {
		t.Errorf("segments = %v", segs)
	}
	if err := ls.Alloc("zero", 0); err == nil {
		t.Error("zero-byte allocation accepted")
	}
	if ls.Size() != 256*1024 {
		t.Errorf("size = %d", ls.Size())
	}
}

func TestDMAValidation(t *testing.T) {
	m := testMachine(t)
	spe := m.SPEs[0]
	for _, size := range []int{1, 2, 4, 8, 16, 2048, 16384} {
		if _, err := spe.DMAAsync(size); err != nil {
			t.Errorf("legal size %d rejected: %v", size, err)
		}
	}
	for _, size := range []int{0, -4, 3, 5, 17, 100, 16 * 1024 * 2} {
		if _, err := spe.DMAAsync(size); err == nil {
			t.Errorf("illegal size %d accepted", size)
		}
	}
}

func TestDMATiming(t *testing.T) {
	m := testMachine(t)
	spe := m.SPEs[0]
	var elapsed sim.Time
	m.Eng.Spawn("dma", func(p *sim.Proc) {
		if err := spe.DMA(p, 2048); err != nil {
			t.Error(err)
		}
		elapsed = p.Now()
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := m.DMAStartup + sim.Time(2048/m.EIBBytesPerRing)
	if elapsed != want {
		t.Errorf("DMA of 2 KB took %d cycles, want %d", elapsed, want)
	}
	if m.DMARequests != 1 || m.DMABytes != 2048 {
		t.Errorf("stats: %d requests, %d bytes", m.DMARequests, m.DMABytes)
	}
}

func TestDMAAsyncOverlap(t *testing.T) {
	// Double buffering: issuing DMA before compute must overlap, so total
	// time is max(compute, dma), not the sum.
	m := testMachine(t)
	spe := m.SPEs[0]
	var syncT, asyncT sim.Time

	m2 := testMachine(t)
	m2.Eng.Spawn("sync", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if err := m2.SPEs[0].DMA(p, 2048); err != nil {
				t.Error(err)
			}
			m2.SPEs[0].Compute(p, 5000)
		}
		syncT = p.Now()
	})
	if err := m2.Eng.Run(); err != nil {
		t.Fatal(err)
	}

	m.Eng.Spawn("dbl", func(p *sim.Proc) {
		pending, err := spe.DMAAsync(2048)
		if err != nil {
			t.Error(err)
		}
		for i := 0; i < 10; i++ {
			spe.WaitDMA(p, pending)
			if i < 9 {
				pending, err = spe.DMAAsync(2048)
				if err != nil {
					t.Error(err)
				}
			}
			spe.Compute(p, 5000)
		}
		asyncT = p.Now()
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if asyncT >= syncT {
		t.Errorf("double buffering (%d) not faster than synchronous (%d)", asyncT, syncT)
	}
	// With 5000-cycle compute > ~1056-cycle DMA, all but the first transfer
	// hide completely.
	firstDMA := m.DMAStartup + sim.Time(2048/m.EIBBytesPerRing)
	want := firstDMA + 10*5000
	if asyncT != want {
		t.Errorf("overlapped time = %d, want %d", asyncT, want)
	}
}

func TestDMAList(t *testing.T) {
	m := testMachine(t)
	spe := m.SPEs[0]
	sizes, err := ChunkDMA(100*1024, m.DMAMaxBytes)
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 7 { // 100KB / 16KB -> 6 full + remainder
		t.Errorf("chunks = %v", sizes)
	}
	total := 0
	for _, s := range sizes {
		total += s
		if s > m.DMAMaxBytes || s%16 != 0 {
			t.Errorf("illegal chunk %d", s)
		}
	}
	if total < 100*1024 {
		t.Errorf("chunks cover %d bytes", total)
	}
	var done sim.Time
	m.Eng.Spawn("list", func(p *sim.Proc) {
		d, err := spe.DMAList(sizes)
		if err != nil {
			t.Error(err)
		}
		spe.WaitDMA(p, d)
		done = p.Now()
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if done == 0 {
		t.Error("DMA list completed at t=0")
	}
	// List limits.
	if _, err := spe.DMAList(nil); err == nil {
		t.Error("empty list accepted")
	}
	big := make([]int, m.DMAListMax+1)
	for i := range big {
		big[i] = 16
	}
	if _, err := spe.DMAList(big); err == nil {
		t.Error("oversized list accepted")
	}
}

func TestEIBContention(t *testing.T) {
	// More concurrent DMA streams than rings must serialize.
	m := testMachine(t)
	finish := make([]sim.Time, 8)
	for i := 0; i < 8; i++ {
		i := i
		spe := m.SPEs[i]
		m.Eng.Spawn("stream", func(p *sim.Proc) {
			if err := spe.DMA(p, 16384); err != nil {
				t.Error(err)
			}
			finish[i] = p.Now()
		})
	}
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 8 transfers over 4 rings: half finish one transfer-time later.
	early, late := 0, 0
	for _, f := range finish {
		if f == finish[0] {
			early++
		} else {
			late++
		}
	}
	if early != 4 || late != 4 {
		t.Errorf("finish times %v: want 4 early + 4 late", finish)
	}
}

func TestMailboxBlocking(t *testing.T) {
	m := testMachine(t)
	spe := m.SPEs[0]
	var received []int
	m.Eng.Spawn("ppe", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			spe.Mailbox.Send(p, i) // blocks at 4 entries until SPE drains
			m.MailboxSends++
		}
	})
	m.Eng.Spawn("spe", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			p.Advance(1000)
			v := spe.Mailbox.Recv(p).(int)
			received = append(received, v)
		}
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range received {
		if v != i {
			t.Fatalf("mailbox order broken: %v", received)
		}
	}
	if m.MailboxSends != 6 {
		t.Errorf("sends = %d", m.MailboxSends)
	}
}

func TestSPEUtilization(t *testing.T) {
	m := testMachine(t)
	spe := m.SPEs[3]
	m.Eng.Spawn("work", func(p *sim.Proc) {
		spe.Compute(p, 600)
		p.Advance(400) // idle
	})
	if err := m.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if u := spe.Utilization(); u != 0.6 {
		t.Errorf("utilization = %v, want 0.6", u)
	}
	if spe.BusyCycles() != 600 {
		t.Errorf("busy = %d", spe.BusyCycles())
	}
	if m.SPEs[0].Utilization() != 0 {
		t.Error("idle SPE shows utilization")
	}
}

func TestDefaultCostModelSanity(t *testing.T) {
	c := DefaultCostModel()
	if c.SPEExpLibm <= c.SPEExpSDK {
		t.Error("libm exp must cost more than SDK exp")
	}
	if c.SPECondScalar <= c.SPECondVector {
		t.Error("scalar conditional must cost more than vectorized")
	}
	if c.SPEFlopScalar <= c.SPEFlopVector {
		t.Error("scalar flop must cost more than vector flop")
	}
	if c.MailboxRoundTrip <= c.DirectRoundTrip {
		t.Error("mailbox must cost more than direct signalling")
	}
	if c.PPESMTFactor <= 1 {
		t.Error("SMT factor must exceed 1")
	}
	if c.LLPBarrier <= 0 || c.ContextSwitch <= 0 {
		t.Error("scheduler overheads must be positive")
	}
	if c.MemBytesPerCycle <= 0 || c.DMABatchStartup <= 0 {
		t.Error("memory model must be positive")
	}
}

func TestChunkDMAErrors(t *testing.T) {
	if _, err := ChunkDMA(0, 16384); err == nil {
		t.Error("zero total accepted")
	}
	sizes, err := ChunkDMA(10, 16384) // rounds up to 16
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 1 || sizes[0] != 16 {
		t.Errorf("sizes = %v", sizes)
	}
}
