// Package cell models the Cell Broadband Engine of the paper's Section 4 as
// a discrete-event system: one dual-thread PPE, eight SPEs with 256 KB of
// software-managed local store each, Memory Flow Controllers issuing DMA
// transfers of at most 16 KB over a four-ring Element Interconnect Bus, and
// four-entry inbound mailboxes. Costs are expressed in 3.2 GHz cycles.
//
// The model is calibrated from the microarchitectural facts the paper
// itself reports: double-precision issue of two ops every six cycles,
// ~20-cycle branch mispredict penalty on the SPE, DMA latency and EIB
// bandwidth of 96 bytes/cycle (204.8 GB/s), and the relative costs of libm
// exp() versus the SDK's numerical exp().
package cell

import (
	"fmt"

	"raxmlcell/internal/sim"
)

// Params describes the machine configuration.
type Params struct {
	ClockHz         float64 // 3.2 GHz production silicon
	NumSPE          int     // 8 per Cell
	PPEThreads      int     // PPE is 2-way SMT
	LocalStoreBytes int     // 256 KB per SPE
	DMAMaxBytes     int     // one DMA request moves at most 16 KB
	DMAListMax      int     // a DMA list holds up to 2,048 requests
	MailboxEntries  int     // 4-entry inbound mailbox
	EIBRings        int     // 4 data rings
	EIBBytesPerRing float64 // 96 bytes/cycle total across 4 rings = 24 each
	DMAStartup      sim.Time
}

// DefaultParams returns the QS20-blade configuration used in the paper.
func DefaultParams() Params {
	return Params{
		ClockHz:         3.2e9,
		NumSPE:          8,
		PPEThreads:      2,
		LocalStoreBytes: 256 * 1024,
		DMAMaxBytes:     16 * 1024,
		DMAListMax:      2048,
		MailboxEntries:  4,
		EIBRings:        4,
		EIBBytesPerRing: 24,
		DMAStartup:      300,
	}
}

// Machine is one simulated Cell processor.
type Machine struct {
	Params
	Eng  *sim.Engine
	PPE  *PPE
	SPEs []*SPE
	eib  *sim.MultiServer

	// Aggregate statistics.
	DMARequests   uint64
	DMABytes      uint64
	MailboxSends  uint64
	DirectSignals uint64
}

// New builds a machine on a fresh simulation engine.
func New(p Params) (*Machine, error) {
	if p.NumSPE <= 0 || p.PPEThreads <= 0 {
		return nil, fmt.Errorf("cell: need positive SPE and PPE thread counts")
	}
	if p.ClockHz <= 0 || p.EIBBytesPerRing <= 0 || p.EIBRings <= 0 {
		return nil, fmt.Errorf("cell: bad clock or EIB parameters")
	}
	m := &Machine{
		Params: p,
		Eng:    sim.NewEngine(),
		eib:    sim.NewMultiServer(p.EIBRings),
	}
	m.PPE = &PPE{Threads: sim.NewResource(p.PPEThreads), mach: m}
	for i := 0; i < p.NumSPE; i++ {
		spe := &SPE{
			ID:      i,
			LS:      NewLocalStore(p.LocalStoreBytes),
			Mailbox: sim.NewQueue(p.MailboxEntries),
			mach:    m,
		}
		m.SPEs = append(m.SPEs, spe)
	}
	return m, nil
}

// Seconds converts simulated cycles to wall-clock seconds.
func (m *Machine) Seconds(t sim.Time) float64 { return float64(t) / m.ClockHz }

// Cycles converts seconds to cycles (rounded down).
func (m *Machine) Cycles(sec float64) sim.Time { return sim.Time(sec * m.ClockHz) }

// PPE is the Power Processing Element: a 2-way SMT front-end whose hardware
// threads are a counted resource that MPI processes acquire to run.
type PPE struct {
	Threads *sim.Resource
	mach    *Machine
}

// SPE is one Synergistic Processing Element.
type SPE struct {
	ID      int
	LS      *LocalStore
	Mailbox *sim.Queue
	mach    *Machine

	// Busy tracking for scheduler decisions and utilization reporting.
	busyCycles sim.Time
}

// Compute advances the calling process by the given number of SPE cycles,
// accounting them as busy time.
func (s *SPE) Compute(p *sim.Proc, cycles sim.Time) {
	s.busyCycles += cycles
	p.Advance(cycles)
}

// Decrementer reads the SPE's decrementer register — the cycle counter the
// paper used to measure time spent inside offloaded functions. In the model
// it is simply the machine's global cycle clock.
func (s *SPE) Decrementer() sim.Time { return s.mach.Eng.Now() }

// AddBusy accounts busy cycles without advancing the caller — used when a
// single process charges work to several SPEs at once (loop-level
// distribution) and advances by the maximum share itself.
func (s *SPE) AddBusy(cycles sim.Time) { s.busyCycles += cycles }

// BusyCycles reports the SPE's accumulated compute time.
func (s *SPE) BusyCycles() sim.Time { return s.busyCycles }

// Utilization is busy time divided by total simulated time.
func (s *SPE) Utilization() float64 {
	if s.mach.Eng.Now() == 0 {
		return 0
	}
	return float64(s.busyCycles) / float64(s.mach.Eng.Now())
}

// dmaDuration computes transfer time for one request of the given size.
func (m *Machine) dmaDuration(size int) sim.Time {
	return m.DMAStartup + sim.Time(float64(size)/m.EIBBytesPerRing)
}

// DMA validates and performs a synchronous DMA transfer between main memory
// and the SPE's local store, blocking the calling process until completion.
// Size and alignment rules follow the MFC: at most 16 KB per request, sizes
// of 1, 2, 4, 8 or multiples of 16 bytes.
func (s *SPE) DMA(p *sim.Proc, size int) error {
	done, err := s.DMAAsync(size)
	if err != nil {
		return err
	}
	s.WaitDMA(p, done)
	return nil
}

// DMAAsync issues a DMA request and returns its completion time without
// blocking — the double-buffering primitive: issue the next batch, compute
// on the current one, then WaitDMA.
func (s *SPE) DMAAsync(size int) (sim.Time, error) {
	if err := validateDMASize(size, s.mach.DMAMaxBytes); err != nil {
		return 0, err
	}
	s.mach.DMARequests++
	s.mach.DMABytes += uint64(size)
	return s.mach.eib.Reserve(s.mach.Eng.Now(), s.mach.dmaDuration(size)), nil
}

// DMAList issues a list of DMA requests (the MFC's DMA-list facility for
// moving more than 16 KB) and returns the completion time of the last one.
func (s *SPE) DMAList(sizes []int) (sim.Time, error) {
	if len(sizes) == 0 {
		return 0, fmt.Errorf("cell: empty DMA list")
	}
	if len(sizes) > s.mach.DMAListMax {
		return 0, fmt.Errorf("cell: DMA list of %d entries exceeds the %d limit", len(sizes), s.mach.DMAListMax)
	}
	var done sim.Time
	for _, size := range sizes {
		d, err := s.DMAAsync(size)
		if err != nil {
			return 0, err
		}
		if d > done {
			done = d
		}
	}
	return done, nil
}

// WaitDMA blocks the process until the given completion time has passed
// (no-op if it already has).
func (s *SPE) WaitDMA(p *sim.Proc, done sim.Time) {
	now := s.mach.Eng.Now()
	if done > now {
		p.Advance(done - now)
	}
}

func validateDMASize(size, max int) error {
	if size <= 0 {
		return fmt.Errorf("cell: DMA size %d must be positive", size)
	}
	if size > max {
		return fmt.Errorf("cell: DMA size %d exceeds the %d-byte MFC limit", size, max)
	}
	switch size {
	case 1, 2, 4, 8:
		return nil
	}
	if size%16 != 0 {
		return fmt.Errorf("cell: DMA size %d is not 1, 2, 4, 8 or a multiple of 16", size)
	}
	return nil
}

// ChunkDMA splits a transfer of total bytes into MFC-legal request sizes
// (16-byte aligned chunks capped at the DMA maximum).
func ChunkDMA(total, max int) ([]int, error) {
	if total <= 0 {
		return nil, fmt.Errorf("cell: transfer of %d bytes", total)
	}
	// Round up to the 16-byte granule like a real buffer allocation would.
	if total%16 != 0 {
		total += 16 - total%16
	}
	var sizes []int
	for total > 0 {
		n := total
		if n > max {
			n = max
		}
		sizes = append(sizes, n)
		total -= n
	}
	return sizes, nil
}
