package cell

// CostModel holds per-operation cycle costs for the SPE and PPE execution
// of the likelihood kernels. The values are calibrated from the paper's own
// measurements rather than invented:
//
//   - SPE double precision is partially pipelined (2 ops issued per 6
//     cycles); with dependency stalls the scalar code averages ~6
//     cycles/flop, and the 2-lane spu_madd vector code roughly halves the
//     instruction count (the paper reports the loop bodies dropping from
//     36->24 and 44->22 instructions, and measures the two loops going from
//     19.57 s to 11.48 s — a 1.7x).
//   - libm exp() on the SPE costs thousands of cycles (software double
//     precision without branch prediction); the paper measures exp() at 50%
//     of total SPE time for ~150 calls among 25,554 flops, and a 37-41%
//     total-time reduction from switching to the SDK exp() — implying ~4,000
//     cycles per libm call versus ~100 for the SDK version.
//   - The 8-condition scaling if() costs ~45% of newview() scalar
//     (double-precision comparisons are emulated and every condition is a
//     hard-to-predict branch at ~20 cycles per mispredict); the integer-cast
//     vectorized version reduces its share to 6%.
//   - PPE<->SPE mailbox signalling costs tens of microseconds per offload
//     round trip (MMIO plus busy-wait polling); direct memory-to-memory
//     signalling cuts it by an order of magnitude (the paper: 2-11%).
type CostModel struct {
	// SPE kernel costs (cycles).
	SPEFlopScalar     float64 // per DP flop in scalar code
	SPEFlopVector     float64 // per DP flop in vectorized code
	SPEVectorOverhead float64 // per big-loop iteration: splat/shuffle insns
	SPEExpLibm        float64 // per libm exp() call
	SPEExpSDK         float64 // per SDK exp() call
	SPELog            float64 // per log() call
	SPECondScalar     float64 // per scaling check, scalar float compares
	SPECondVector     float64 // per scaling check, integer-cast vectorized
	SPEScaleBody      float64 // per taken scaling branch (the rare body)

	// PPE kernel costs (cycles). The PPE is a conventional out-of-order-ish
	// core with caches and a branch predictor: flops are cheap, exp/log are
	// library calls, the scaling conditional mostly predicts well.
	PPEFlop float64
	PPEExp  float64
	PPELog  float64
	PPECond float64

	// SMT contention: running 2 processes on the PPE's two hardware threads
	// slows each by this factor (Table 1a: 207.67 s for 2x4 bootstraps
	// versus 36.9 s for 1x1 gives 207.67/(36.9*4) = 1.41).
	PPESMTFactor float64

	// Communication (cycles per offload round trip: signal + completion).
	MailboxRoundTrip float64
	DirectRoundTrip  float64

	// Memory system for strip-mined likelihood-vector streaming.
	MemBytesPerCycle float64 // XDR memory: 25.6 GB/s at 3.2 GHz = 8 B/cycle
	DMABatchStartup  float64 // per strip-mine batch request

	// EDTLP context switch on the PPE (switch-on-offload).
	ContextSwitch float64

	// LLPBarrier is the per-episode cost of distributing a loop across SPEs
	// and collecting the results (charged once per extra SPE per episode).
	LLPBarrier float64
}

// DefaultCostModel returns the calibrated model. The constants are fitted
// against the stage deltas of Tables 1-7 for the 1-worker/1-bootstrap
// column (see EXPERIMENTS.md): e.g. the libm-vs-SDK exp difference follows
// from Table 1b->2 (605k cycles saved per newview over 150 exp calls), the
// conditional costs from Table 2->3, the DMA batch cost from Table 3->4,
// the scalar/vector flop costs from Table 4->5 together with the paper's
// measured 19.57s->11.48s loop time, and the signalling costs from Table
// 5->6.
func DefaultCostModel() CostModel {
	return CostModel{
		SPEFlopScalar:     6.0,
		SPEFlopVector:     2.46,
		SPEVectorOverhead: 25.0, // the paper counts 25 added vector-construction insns
		SPEExpLibm:        4100,
		SPEExpSDK:         67,
		SPELog:            220,
		SPECondScalar:     878,
		SPECondVector:     56,
		SPEScaleBody:      120,

		PPEFlop: 9.5, // in-order core, small L2: likelihood code is memory-bound
		PPEExp:  180,
		PPELog:  80,
		PPECond: 35,

		PPESMTFactor: 1.41, // Table 1a: 207.67 / (4 x 36.9)

		MailboxRoundTrip: 15500,
		DirectRoundTrip:  1600,

		MemBytesPerCycle: 8, // XDR main memory: 25.6 GB/s at 3.2 GHz
		DMABatchStartup:  1870,

		ContextSwitch: 54000,
		LLPBarrier:    12000,
	}
}
