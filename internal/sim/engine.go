// Package sim is a process-oriented discrete-event simulation kernel: the
// substrate under the Cell Broadband Engine model in internal/cell. Each
// simulated hardware thread is a Proc — a goroutine that the engine resumes
// one at a time, so simulated time is global, deterministic, and advances
// only through explicit Advance calls. Ties in event time are broken by
// schedule order (FIFO), making every run bit-reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in cycles.
type Time uint64

// event resumes a parked process at a given time.
type event struct {
	at   Time
	seq  uint64
	proc *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Tracer receives the engine's timeline events: process lifecycle
// instants, work spans (Advance), and waiting spans (blocked on a Cond).
// internal/obs provides the standard implementation that exports Chrome
// trace-event JSON; the engine itself only requires this interface so the
// simulator does not depend on the observability layer.
//
// All timestamps are simulated cycles. A nil tracer disables tracing with
// no per-event cost beyond one branch.
type Tracer interface {
	// Instant records a zero-duration marker on a track.
	Instant(track, name, cat string, at Time)
	// Span records a slice covering [from, to] on a track.
	Span(track, name, cat string, from, to Time)
	// Counter records a sample of a numeric series.
	Counter(track, name string, at Time, value float64)
}

// Engine owns the virtual clock and the run queue.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	procs  []*Proc
	tracer Tracer
}

// NewEngine creates an empty simulation.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// SetTracer attaches a timeline tracer (nil disables tracing). Attach it
// before Run so process spawns are captured.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// Tracer returns the attached tracer, or nil.
func (e *Engine) Tracer() Tracer { return e.tracer }

// Proc is one simulated thread of execution. All Proc methods must be
// called from within the process's own body function.
type Proc struct {
	Name   string
	eng    *Engine
	resume chan struct{}
	parked chan struct{}
	body   func(*Proc)

	started   bool
	done      bool
	daemon    bool // daemons may remain blocked when the simulation ends
	blocked   bool // parked without a pending wake event (waiting on a Cond)
	blockedAt Time // when the current block began (tracing)
	err       error
}

// Spawn registers a new process whose body starts executing at the current
// simulated time. It may be called before Run or from inside a running
// process.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{
		Name:   name,
		eng:    e,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
		body:   body,
	}
	e.procs = append(e.procs, p)
	e.schedule(p, e.now)
	if e.tracer != nil {
		e.tracer.Instant(p.Name, "spawn", "sim", e.now)
	}
	return p
}

// SetDaemon marks the process as a daemon: the simulation is allowed to
// finish while a daemon is still blocked (e.g. an SPE thread busy-waiting
// for work that will never come).
func (p *Proc) SetDaemon(v bool) { p.daemon = v }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

func (e *Engine) schedule(p *Proc, at Time) {
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, proc: p})
}

// Run drives the simulation until no events remain. It returns an error if
// any non-daemon process is still blocked at that point (deadlock).
func (e *Engine) Run() error {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		p := ev.proc
		if p.done {
			continue
		}
		if ev.at < e.now {
			return fmt.Errorf("sim: time went backwards (%d -> %d)", e.now, ev.at)
		}
		e.now = ev.at
		p.blocked = false
		if !p.started {
			p.started = true
			go func() {
				<-p.resume
				defer func() {
					// A panicking process must not hang the engine: record
					// the failure and hand control back.
					if r := recover(); r != nil {
						p.err = fmt.Errorf("sim: process %q panicked: %v", p.Name, r)
					}
					p.done = true
					p.parked <- struct{}{}
				}()
				p.body(p)
			}()
		}
		p.resume <- struct{}{}
		<-p.parked
		if p.err != nil {
			return p.err
		}
		if p.done && e.tracer != nil {
			e.tracer.Instant(p.Name, "exit", "sim", e.now)
		}
	}
	for _, p := range e.procs {
		if !p.done && p.started && p.blocked && !p.daemon {
			return fmt.Errorf("sim: deadlock: process %q blocked with no pending events at t=%d", p.Name, e.now)
		}
	}
	return nil
}

// park hands control back to the engine; the process stays suspended until
// another event resumes it.
func (p *Proc) park() {
	p.parked <- struct{}{}
	<-p.resume
}

// Advance moves the process's execution forward by d cycles of simulated
// time (modelling computation or fixed-latency operations).
func (p *Proc) Advance(d Time) {
	if d > 0 && p.eng.tracer != nil {
		p.eng.tracer.Span(p.Name, "advance", "sim", p.eng.now, p.eng.now+d)
	}
	p.eng.schedule(p, p.eng.now+d)
	p.park()
}

// Yield reschedules the process at the current time behind already-pending
// same-time events (a cooperative context switch).
func (p *Proc) Yield() { p.Advance(0) }

// block parks the process with no wake-up event; a Cond signal must
// reschedule it. Used by the synchronization primitives.
func (p *Proc) block() {
	p.blocked = true
	p.blockedAt = p.eng.now
	p.park()
	if t := p.eng.tracer; t != nil && p.eng.now > p.blockedAt {
		t.Span(p.Name, "blocked", "sim", p.blockedAt, p.eng.now)
	}
}

// unblock schedules the process to resume at the current time.
func (p *Proc) unblock() {
	p.eng.schedule(p, p.eng.now)
}

// Now returns the current simulated time (convenience).
func (p *Proc) Now() Time { return p.eng.now }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }
