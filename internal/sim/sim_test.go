package sim

import (
	"testing"
)

func TestAdvanceOrdering(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Spawn("a", func(p *Proc) {
		p.Advance(10)
		trace = append(trace, "a@10")
		p.Advance(20)
		trace = append(trace, "a@30")
	})
	e.Spawn("b", func(p *Proc) {
		p.Advance(15)
		trace = append(trace, "b@15")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a@10", "b@15", "a@30"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("final time = %d, want 30", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			p.Advance(7)
			order = append(order, i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestCondSignal(t *testing.T) {
	e := NewEngine()
	var c Cond
	var got []string
	e.Spawn("waiter1", func(p *Proc) {
		c.Wait(p)
		got = append(got, "w1")
	})
	e.Spawn("waiter2", func(p *Proc) {
		c.Wait(p)
		got = append(got, "w2")
	})
	e.Spawn("signaller", func(p *Proc) {
		p.Advance(5)
		c.Signal()
		p.Advance(5)
		c.Signal()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "w1" || got[1] != "w2" {
		t.Errorf("wake order = %v", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	var c Cond
	e.Spawn("stuck", func(p *Proc) {
		c.Wait(p)
	})
	if err := e.Run(); err == nil {
		t.Error("deadlocked simulation returned nil error")
	}
}

func TestDaemonMayStayBlocked(t *testing.T) {
	e := NewEngine()
	var c Cond
	e.Spawn("spe-idle", func(p *Proc) {
		p.SetDaemon(true)
		c.Wait(p)
	})
	e.Spawn("main", func(p *Proc) {
		p.Advance(100)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("daemon counted as deadlock: %v", err)
	}
	if e.Now() != 100 {
		t.Errorf("time = %d", e.Now())
	}
}

func TestResource(t *testing.T) {
	e := NewEngine()
	r := NewResource(2)
	var maxConcurrent, cur int
	worker := func(p *Proc) {
		r.Acquire(p, 1)
		cur++
		if cur > maxConcurrent {
			maxConcurrent = cur
		}
		p.Advance(10)
		cur--
		r.Release(1)
	}
	for i := 0; i < 6; i++ {
		e.Spawn("w", worker)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxConcurrent != 2 {
		t.Errorf("max concurrency = %d, want 2", maxConcurrent)
	}
	// 6 jobs, 2 at a time, 10 cycles each -> 30 cycles.
	if e.Now() != 30 {
		t.Errorf("makespan = %d, want 30", e.Now())
	}
	if r.InUse() != 0 || r.Capacity() != 2 {
		t.Errorf("resource state %d/%d", r.InUse(), r.Capacity())
	}
}

func TestResourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-capacity resource accepted")
		}
	}()
	NewResource(0)
}

func TestQueueBlockingBehaviour(t *testing.T) {
	e := NewEngine()
	q := NewQueue(2)
	var recvTimes []Time
	var sendDone Time
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			q.Send(p, i) // blocks after 2 until consumer drains
		}
		sendDone = p.Now()
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			p.Advance(10)
			v := q.Recv(p)
			if v.(int) != i {
				t.Errorf("recv %v, want %d", v, i)
			}
			recvTimes = append(recvTimes, p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(recvTimes) != 4 {
		t.Fatalf("recvs = %v", recvTimes)
	}
	// Producer's 3rd send can only complete after the 1st recv at t=10.
	if sendDone < 10 {
		t.Errorf("producer finished at %d, expected to block until >= 10", sendDone)
	}
	if q.Len() != 0 {
		t.Errorf("queue not drained: %d", q.Len())
	}
}

func TestQueueTryRecv(t *testing.T) {
	q := NewQueue(1)
	if _, ok := q.TryRecv(); ok {
		t.Error("TryRecv on empty queue succeeded")
	}
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		q.Send(p, "x")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	v, ok := q.TryRecv()
	if !ok || v.(string) != "x" {
		t.Errorf("TryRecv = %v, %v", v, ok)
	}
}

func TestServerSerializes(t *testing.T) {
	var s Server
	// Two back-to-back requests at t=0 of 100 cycles each.
	if got := s.Reserve(0, 100); got != 100 {
		t.Errorf("first completion = %d", got)
	}
	if got := s.Reserve(0, 100); got != 200 {
		t.Errorf("second completion = %d", got)
	}
	// A request after the server drained starts immediately.
	if got := s.Reserve(500, 100); got != 600 {
		t.Errorf("third completion = %d", got)
	}
}

func TestMultiServerParallelism(t *testing.T) {
	m := NewMultiServer(4)
	// Four simultaneous requests run in parallel; the fifth queues.
	for i := 0; i < 4; i++ {
		if got := m.Reserve(0, 100); got != 100 {
			t.Fatalf("request %d completes at %d, want 100", i, got)
		}
	}
	if got := m.Reserve(0, 100); got != 200 {
		t.Errorf("fifth request completes at %d, want 200", got)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := NewEngine()
	var childRan bool
	e.Spawn("parent", func(p *Proc) {
		p.Advance(10)
		e.Spawn("child", func(c *Proc) {
			c.Advance(5)
			childRan = true
		})
		p.Advance(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Error("child spawned mid-run never executed")
	}
	if e.Now() != 15 {
		t.Errorf("final time = %d, want 15", e.Now())
	}
}

func TestYield(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// a yields at t=0, letting b run before a resumes.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPanicInProcessSurfacesAsError(t *testing.T) {
	e := NewEngine()
	e.Spawn("bomb", func(p *Proc) {
		p.Advance(10)
		panic("boom")
	})
	e.Spawn("bystander", func(p *Proc) {
		p.Advance(100)
	})
	err := e.Run()
	if err == nil {
		t.Fatal("panicking process did not surface an error")
	}
	if want := "boom"; !contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		r := NewResource(3)
		q := NewQueue(4)
		var times []Time
		for i := 0; i < 8; i++ {
			i := i
			e.Spawn("w", func(p *Proc) {
				r.Acquire(p, 1)
				p.Advance(Time(10 + i*3))
				q.Send(p, i)
				r.Release(1)
			})
		}
		e.Spawn("collector", func(p *Proc) {
			for i := 0; i < 8; i++ {
				q.Recv(p)
				times = append(times, p.Now())
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic: %v vs %v", a, b)
		}
	}
}
