package sim

import "fmt"

// Cond is a FIFO condition variable: processes Wait on it and are resumed
// in waiting order by Signal/Broadcast.
type Cond struct {
	waiters []*Proc
}

// Wait parks the calling process until signalled.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.block()
}

// Signal wakes the longest-waiting process, if any.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	w.unblock()
}

// Broadcast wakes every waiting process.
func (c *Cond) Broadcast() {
	for _, w := range c.waiters {
		w.unblock()
	}
	c.waiters = nil
}

// Waiting returns the number of parked processes.
func (c *Cond) Waiting() int { return len(c.waiters) }

// Resource is a counted resource with FIFO acquisition (a semaphore with
// fairness), e.g. PPE hardware threads.
type Resource struct {
	capacity int
	inUse    int
	cond     Cond
}

// NewResource creates a resource with the given capacity.
func NewResource(capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource capacity %d", capacity))
	}
	return &Resource{capacity: capacity}
}

// Acquire blocks the process until n units are available, then takes them.
func (r *Resource) Acquire(p *Proc, n int) {
	if n > r.capacity {
		panic(fmt.Sprintf("sim: acquire %d exceeds capacity %d", n, r.capacity))
	}
	for r.inUse+n > r.capacity {
		r.cond.Wait(p)
	}
	r.inUse += n
}

// Release returns n units and wakes waiters.
func (r *Resource) Release(n int) {
	r.inUse -= n
	if r.inUse < 0 {
		panic("sim: release below zero")
	}
	r.cond.Broadcast()
}

// InUse reports the currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Capacity reports the total units.
func (r *Resource) Capacity() int { return r.capacity }

// Queue is a bounded FIFO channel between processes (the model for Cell
// mailboxes). Send blocks when full, Recv blocks when empty.
type Queue struct {
	items    []interface{}
	capacity int
	notFull  Cond
	notEmpty Cond
}

// NewQueue creates a queue with the given capacity (must be positive).
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: queue capacity %d", capacity))
	}
	return &Queue{capacity: capacity}
}

// Send enqueues v, blocking while the queue is full.
func (q *Queue) Send(p *Proc, v interface{}) {
	for len(q.items) >= q.capacity {
		q.notFull.Wait(p)
	}
	q.items = append(q.items, v)
	q.notEmpty.Signal()
}

// Recv dequeues the oldest item, blocking while the queue is empty.
func (q *Queue) Recv(p *Proc) interface{} {
	for len(q.items) == 0 {
		q.notEmpty.Wait(p)
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.notFull.Signal()
	return v
}

// TryRecv dequeues without blocking; ok is false when empty.
func (q *Queue) TryRecv() (interface{}, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.notFull.Signal()
	return v, true
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Server models a pipelined fixed-rate device (an EIB ring, a memory
// channel): requests serialize in FIFO order without needing a process
// context. Reserve returns the completion time of a request of the given
// duration issued now.
type Server struct {
	nextFree Time
}

// Reserve books the server for dur starting no earlier than now, returning
// the completion time.
func (s *Server) Reserve(now Time, dur Time) Time {
	start := now
	if s.nextFree > start {
		start = s.nextFree
	}
	s.nextFree = start + dur
	return s.nextFree
}

// NextFree reports when the server becomes idle.
func (s *Server) NextFree() Time { return s.nextFree }

// MultiServer is a bank of identical Servers (the EIB's four rings):
// Reserve picks the earliest-available channel.
type MultiServer struct {
	channels []Server
}

// NewMultiServer creates a bank of n servers.
func NewMultiServer(n int) *MultiServer {
	if n <= 0 {
		panic(fmt.Sprintf("sim: multiserver size %d", n))
	}
	return &MultiServer{channels: make([]Server, n)}
}

// Reserve books the channel that can start earliest.
func (m *MultiServer) Reserve(now Time, dur Time) Time {
	best := 0
	for i := 1; i < len(m.channels); i++ {
		if m.channels[i].nextFree < m.channels[best].nextFree {
			best = i
		}
	}
	return m.channels[best].Reserve(now, dur)
}
