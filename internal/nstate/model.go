package nstate

import (
	"fmt"
	"math"

	"raxmlcell/internal/model"
)

// Model is a reversible n-state substitution model with discrete Gamma rate
// categories, diagonalized once at construction.
type Model struct {
	Size   int
	Freqs  []float64
	Lambda []float64
	V      [][]float64
	VInv   [][]float64
	Alpha  float64
	Cats   []float64
}

// NewReversible builds a model from a symmetric exchangeability matrix
// (only the off-diagonal entries are read; exch[i][j] must equal
// exch[j][i]) and stationary frequencies, normalized to mean rate 1 — the
// n-state generalization of the GTR construction in internal/model.
func NewReversible(exch [][]float64, freqs []float64, alpha float64, cats int) (*Model, error) {
	n := len(freqs)
	if n < 2 {
		return nil, fmt.Errorf("nstate: need >= 2 states, got %d", n)
	}
	if len(exch) != n {
		return nil, fmt.Errorf("nstate: exchangeability matrix is %dx?, want %dx%d", len(exch), n, n)
	}
	sum := 0.0
	for i, f := range freqs {
		if f <= 0 {
			return nil, fmt.Errorf("nstate: frequency %d = %g must be positive", i, f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-6 {
		return nil, fmt.Errorf("nstate: frequencies sum to %g", sum)
	}
	for i := 0; i < n; i++ {
		if len(exch[i]) != n {
			return nil, fmt.Errorf("nstate: exchangeability row %d has %d entries", i, len(exch[i]))
		}
		for j := i + 1; j < n; j++ {
			if exch[i][j] <= 0 {
				return nil, fmt.Errorf("nstate: exchangeability (%d,%d) = %g must be positive", i, j, exch[i][j])
			}
			if math.Abs(exch[i][j]-exch[j][i]) > 1e-9*(1+math.Abs(exch[i][j])) {
				return nil, fmt.Errorf("nstate: exchangeability matrix asymmetric at (%d,%d)", i, j)
			}
		}
	}

	// Q with normalization to unit mean rate.
	q := make([][]float64, n)
	for i := range q {
		q[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		row := 0.0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			q[i][j] = exch[i][j] * freqs[j]
			row += q[i][j]
		}
		q[i][i] = -row
	}
	scale := 0.0
	for i := 0; i < n; i++ {
		scale -= freqs[i] * q[i][i]
	}
	if scale <= 0 {
		return nil, fmt.Errorf("nstate: degenerate rate matrix")
	}
	for i := range q {
		for j := range q[i] {
			q[i][j] /= scale
		}
	}

	// Symmetrize and diagonalize.
	b := make([][]float64, n)
	sqrtPi := make([]float64, n)
	for i := range b {
		b[i] = make([]float64, n)
		sqrtPi[i] = math.Sqrt(freqs[i])
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b[i][j] = sqrtPi[i] * q[i][j] / sqrtPi[j]
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m := (b[i][j] + b[j][i]) / 2
			b[i][j], b[j][i] = m, m
		}
	}
	values, vectors, err := model.JacobiEigen(b)
	if err != nil {
		return nil, err
	}

	m := &Model{
		Size:   n,
		Freqs:  append([]float64(nil), freqs...),
		Lambda: values,
		Alpha:  alpha,
	}
	m.V = make([][]float64, n)
	m.VInv = make([][]float64, n)
	for i := 0; i < n; i++ {
		m.V[i] = make([]float64, n)
		m.VInv[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.V[i][j] = vectors[i][j] / sqrtPi[i]
			m.VInv[i][j] = vectors[j][i] * sqrtPi[j]
		}
	}
	if alpha > 0 && cats > 1 {
		rates, err := model.DiscreteGamma(alpha, cats)
		if err != nil {
			return nil, err
		}
		m.Cats = rates
	} else {
		m.Alpha = 0
		m.Cats = []float64{1}
	}
	return m, nil
}

// Poisson builds the equal-rates, equal-frequencies model over n states —
// for n=20 the standard Poisson model of amino acid evolution (the 20-state
// Jukes-Cantor analogue).
func Poisson(n int, alpha float64, cats int) (*Model, error) {
	exch := make([][]float64, n)
	freqs := make([]float64, n)
	for i := range exch {
		exch[i] = make([]float64, n)
		for j := range exch[i] {
			if i != j {
				exch[i][j] = 1
			}
		}
		freqs[i] = 1 / float64(n)
	}
	return NewReversible(exch, freqs, alpha, cats)
}

// Transition fills p (n x n, row-major) with P(t*rate).
func (m *Model) Transition(t, rate float64, p []float64) {
	n := m.Size
	expl := make([]float64, n)
	for k := 0; k < n; k++ {
		expl[k] = math.Exp(m.Lambda[k] * t * rate)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += m.V[i][k] * expl[k] * m.VInv[k][j]
			}
			if s < 0 {
				s = 0
			}
			p[i*n+j] = s
		}
	}
}
