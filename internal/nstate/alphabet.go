// Package nstate is the generic n-state likelihood machinery: alphabets of
// arbitrary size (DNA, the 20 amino acids), reversible substitution models
// built from any symmetric exchangeability matrix, and a straightforward
// reference Felsenstein evaluator with numerical scaling.
//
// It serves two purposes. First, it extends the library beyond DNA — RAxML
// (and the paper's abstract) handle "multiple alignments of DNA or AA
// sequences", and this package provides the amino-acid substrate with the
// standard Poisson model built in and empirical matrices (WAG, JTT, ...)
// pluggable as data. Second, because it shares no kernel code with the
// optimized 4-state engine in internal/likelihood, it is an independent
// cross-check of that engine: for DNA both must produce identical
// log-likelihoods, which the tests enforce.
package nstate

import (
	"fmt"
	"strings"
)

// Alphabet maps characters to state bitmasks of up to 32 states.
type Alphabet struct {
	Name  string
	Size  int
	chars []byte          // canonical character per state index
	codes map[byte]uint32 // upper-case character -> state mask
}

// States returns the canonical character for state index i.
func (a *Alphabet) StateChar(i int) byte { return a.chars[i] }

// Encode returns the state mask of a character (case-insensitive).
func (a *Alphabet) Encode(c byte) (uint32, error) {
	u := c
	if u >= 'a' && u <= 'z' {
		u -= 'a' - 'A'
	}
	m, ok := a.codes[u]
	if !ok {
		return 0, fmt.Errorf("nstate: invalid %s character %q", a.Name, c)
	}
	return m, nil
}

// All returns the mask with every state set (gap/unknown).
func (a *Alphabet) All() uint32 {
	if a.Size == 32 {
		return ^uint32(0)
	}
	return 1<<a.Size - 1
}

// DNA returns the 4-state nucleotide alphabet with IUPAC ambiguity codes
// (A, C, G, T order, matching internal/bio).
func DNA() *Alphabet {
	a := &Alphabet{Name: "DNA", Size: 4, chars: []byte("ACGT"), codes: map[byte]uint32{}}
	bit := func(s string) uint32 {
		var m uint32
		for i := 0; i < len(s); i++ {
			m |= 1 << uint(strings.IndexByte("ACGT", s[i]))
		}
		return m
	}
	for c, s := range map[byte]string{
		'A': "A", 'C': "C", 'G': "G", 'T': "T", 'U': "T",
		'M': "AC", 'R': "AG", 'W': "AT", 'S': "CG", 'Y': "CT", 'K': "GT",
		'V': "ACG", 'H': "ACT", 'D': "AGT", 'B': "CGT",
		'N': "ACGT", 'X': "ACGT", '?': "ACGT", '-': "ACGT", 'O': "ACGT",
	} {
		a.codes[c] = bit(s)
	}
	return a
}

// aaOrder is the conventional amino acid ordering (as in PAML/RAxML).
const aaOrder = "ARNDCQEGHILKMFPSTWYV"

// Protein returns the 20-state amino acid alphabet with the standard
// ambiguity codes: B (Asn/Asp), Z (Gln/Glu), J (Ile/Leu), and X/?/- for
// fully unknown.
func Protein() *Alphabet {
	a := &Alphabet{Name: "protein", Size: 20, chars: []byte(aaOrder), codes: map[byte]uint32{}}
	for i := 0; i < len(aaOrder); i++ {
		a.codes[aaOrder[i]] = 1 << uint(i)
	}
	mask := func(s string) uint32 {
		var m uint32
		for i := 0; i < len(s); i++ {
			m |= 1 << uint(strings.IndexByte(aaOrder, s[i]))
		}
		return m
	}
	a.codes['B'] = mask("ND")
	a.codes['Z'] = mask("QE")
	a.codes['J'] = mask("IL")
	all := a.All()
	a.codes['X'] = all
	a.codes['?'] = all
	a.codes['-'] = all
	a.codes['*'] = all // stop codons in sloppy alignments: treat as unknown
	return a
}
