package nstate

import (
	"math"
	"math/rand"
	"testing"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/phylotree"
	"raxmlcell/internal/seqsim"
)

func TestAlphabets(t *testing.T) {
	dna := DNA()
	if dna.Size != 4 || dna.All() != 0x0f {
		t.Errorf("DNA size/all: %d %x", dna.Size, dna.All())
	}
	m, err := dna.Encode('r')
	if err != nil || m != 0b0101 {
		t.Errorf("Encode(r) = %04b, %v", m, err)
	}
	if _, err := dna.Encode('Z'); err == nil {
		t.Error("DNA accepted Z")
	}

	aa := Protein()
	if aa.Size != 20 || aa.All() != 1<<20-1 {
		t.Errorf("protein size/all: %d %x", aa.Size, aa.All())
	}
	for i := 0; i < 20; i++ {
		c := aa.StateChar(i)
		m, err := aa.Encode(c)
		if err != nil || m != 1<<uint(i) {
			t.Errorf("Encode(%q) = %x, %v", c, m, err)
		}
	}
	b, _ := aa.Encode('B')
	n, _ := aa.Encode('N')
	d, _ := aa.Encode('D')
	if b != n|d {
		t.Errorf("B = %x, want N|D = %x", b, n|d)
	}
	x, _ := aa.Encode('X')
	if x != aa.All() {
		t.Errorf("X = %x", x)
	}
	if _, err := aa.Encode('1'); err == nil {
		t.Error("protein accepted digit")
	}
}

func TestDNAGenericMatchesOptimizedEngine(t *testing.T) {
	// The independent cross-check: the generic n-state evaluator and the
	// optimized 4-state engine must agree on GTR+Γ DNA likelihoods.
	rng := rand.New(rand.NewSource(701))
	gen := seqsim.DefaultModel()
	a, truth, err := seqsim.Generate(seqsim.Params{
		Taxa: 9, Sites: 300, MeanBranch: 0.12, Alpha: 0.8,
	}, gen, rng)
	if err != nil {
		t.Fatal(err)
	}
	pat := alignment.Compress(a)

	eng, err := likelihood.NewEngine(pat, gen, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Evaluate(truth.Tips[0])
	if err != nil {
		t.Fatal(err)
	}

	// Same model through the generic constructor.
	var exch [4][4]float64
	idx := 0
	order := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	for _, ij := range order {
		exch[ij[0]][ij[1]] = gen.GTR.Rates[idx]
		exch[ij[1]][ij[0]] = gen.GTR.Rates[idx]
		idx++
	}
	rows := make([][]float64, 4)
	for i := range rows {
		rows[i] = exch[i][:]
	}
	nm, err := NewReversible(rows, gen.GTR.Freqs[:], gen.Alpha, len(gen.Cats))
	if err != nil {
		t.Fatal(err)
	}
	var seqs []string
	for _, s := range a.Seqs {
		seqs = append(seqs, s.String())
	}
	ev, err := NewEvaluator(DNA(), nm, a.Names(), seqs)
	if err != nil {
		t.Fatal(err)
	}
	if ev.NumPatterns() != pat.NumPatterns() {
		t.Errorf("pattern counts differ: generic %d vs engine %d", ev.NumPatterns(), pat.NumPatterns())
	}
	got, err := ev.LogL(truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-8*math.Abs(want) {
		t.Errorf("generic logL %.10f != engine %.10f", got, want)
	}
}

func proteinRows(t *testing.T, rng *rand.Rand, nt, ns int) ([]string, []string) {
	t.Helper()
	names := make([]string, nt)
	rows := make([]string, nt)
	base := make([]byte, ns)
	for j := range base {
		base[j] = aaOrder[rng.Intn(20)]
	}
	for i := 0; i < nt; i++ {
		names[i] = string(rune('A' + i))
		row := append([]byte(nil), base...)
		// Mutate ~i*5% of positions for divergence.
		for j := range row {
			if rng.Float64() < 0.05*float64(i) {
				row[j] = aaOrder[rng.Intn(20)]
			}
		}
		rows[i] = string(row)
	}
	return names, rows
}

func TestProteinPoissonBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(702))
	names, rows := proteinRows(t, rng, 6, 120)
	mod, err := Poisson(20, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(Protein(), mod, names, rows)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := phylotree.RandomTopology(names, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Edges() {
		e.SetZ(0.1)
	}
	ll, err := ev.LogL(tr)
	if err != nil {
		t.Fatal(err)
	}
	if ll >= 0 || math.IsInf(ll, 0) || math.IsNaN(ll) {
		t.Fatalf("logL = %v", ll)
	}
	// Branch invariance: same logL from a different anchor tree copy after
	// taxon reorder.
	perm := append([]string(nil), names...)
	perm[0], perm[3] = perm[3], perm[0]
	if err := tr.AlignTaxa(perm); err != nil {
		t.Fatal(err)
	}
	ll2, err := ev.LogL(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ll-ll2) > 1e-7*math.Abs(ll) {
		t.Errorf("anchor-dependent logL: %.10f vs %.10f", ll, ll2)
	}
}

func TestProteinLikelihoodPrefersTrueish(t *testing.T) {
	// Sequences built as two diverged clusters: a topology grouping the
	// clusters should beat one mixing them.
	rng := rand.New(rand.NewSource(703))
	base1 := make([]byte, 200)
	base2 := make([]byte, 200)
	for j := range base1 {
		base1[j] = aaOrder[rng.Intn(20)]
		base2[j] = aaOrder[rng.Intn(20)]
	}
	mut := func(b []byte, p float64) string {
		row := append([]byte(nil), b...)
		for j := range row {
			if rng.Float64() < p {
				row[j] = aaOrder[rng.Intn(20)]
			}
		}
		return string(row)
	}
	names := []string{"a1", "a2", "b1", "b2"}
	rows := []string{mut(base1, 0.05), mut(base1, 0.05), mut(base2, 0.05), mut(base2, 0.05)}
	mod, err := Poisson(20, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewEvaluator(Protein(), mod, names, rows)
	if err != nil {
		t.Fatal(err)
	}
	good, err := phylotree.ParseNewick("((a1:0.05,a2:0.05):0.5,b1:0.05,b2:0.05);")
	if err != nil {
		t.Fatal(err)
	}
	bad, err := phylotree.ParseNewick("((a1:0.05,b1:0.05):0.5,a2:0.05,b2:0.05);")
	if err != nil {
		t.Fatal(err)
	}
	llGood, err := ev.LogL(good)
	if err != nil {
		t.Fatal(err)
	}
	llBad, err := ev.LogL(bad)
	if err != nil {
		t.Fatal(err)
	}
	if llGood <= llBad {
		t.Errorf("clustered topology (%.2f) not preferred over mixed (%.2f)", llGood, llBad)
	}
}

func TestPoissonTransitionAnalytic(t *testing.T) {
	// Poisson P(t): P_ii = 1/n + (1-1/n) e^{-nt/(n-1)}, P_ij = 1/n (1 - e^{...}).
	for _, n := range []int{4, 20} {
		mod, err := Poisson(n, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		p := make([]float64, n*n)
		for _, tt := range []float64{0.05, 0.3, 1.5} {
			mod.Transition(tt, 1, p)
			e := math.Exp(-float64(n) * tt / float64(n-1))
			wantDiag := 1.0/float64(n) + (1-1.0/float64(n))*e
			wantOff := (1.0 / float64(n)) * (1 - e)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					want := wantOff
					if i == j {
						want = wantDiag
					}
					if math.Abs(p[i*n+j]-want) > 1e-9 {
						t.Fatalf("n=%d t=%g: P[%d][%d] = %.12f, want %.12f", n, tt, i, j, p[i*n+j], want)
					}
				}
			}
		}
	}
}

func TestNewReversibleValidation(t *testing.T) {
	if _, err := Poisson(1, 0, 1); err == nil {
		t.Error("1-state model accepted")
	}
	bad := [][]float64{{0, 1}, {2, 0}}
	if _, err := NewReversible(bad, []float64{0.5, 0.5}, 0, 1); err == nil {
		t.Error("asymmetric exchangeabilities accepted")
	}
	if _, err := NewReversible([][]float64{{0, 1}, {1, 0}}, []float64{0.9, 0.2}, 0, 1); err == nil {
		t.Error("non-normalized frequencies accepted")
	}
	if _, err := NewReversible([][]float64{{0, -1}, {-1, 0}}, []float64{0.5, 0.5}, 0, 1); err == nil {
		t.Error("negative exchangeability accepted")
	}
}

func TestEvaluatorValidation(t *testing.T) {
	mod, err := Poisson(20, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEvaluator(Protein(), mod, []string{"a", "b"}, []string{"AC", "AC"}); err == nil {
		t.Error("2 taxa accepted")
	}
	if _, err := NewEvaluator(Protein(), mod, []string{"a", "b", "c"}, []string{"AC", "AC", "A"}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := NewEvaluator(Protein(), mod, []string{"a", "a", "c"}, []string{"AC", "AC", "AC"}); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := NewEvaluator(DNA(), mod, []string{"a", "b", "c"}, []string{"AC", "AC", "AC"}); err == nil {
		t.Error("alphabet/model size mismatch accepted")
	}
	if _, err := NewEvaluator(Protein(), mod, []string{"a", "b", "c"}, []string{"A1", "AC", "AC"}); err == nil {
		t.Error("invalid character accepted")
	}
	ev, err := NewEvaluator(Protein(), mod, []string{"a", "b", "c"}, []string{"ACDE", "ACDF", "ACDG"})
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := phylotree.ParseNewick("(x,y,z);")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.LogL(wrong); err == nil {
		t.Error("foreign taxa accepted")
	}
}
