package nstate

import (
	"fmt"
	"math"

	"raxmlcell/internal/phylotree"
)

// Scaling constants: same 2^±256 scheme as the optimized DNA engine.
var (
	twoTo256  = math.Ldexp(1, 256)
	minLik    = math.Ldexp(1, -256)
	logMinLik = math.Log(minLik)
)

// Evaluator computes tree log-likelihoods over an n-state alignment with a
// plain, unoptimized Felsenstein recursion — the reference implementation.
type Evaluator struct {
	Alpha *Alphabet
	Mod   *Model

	names   []string
	taxon   map[string]int
	data    [][]uint32 // [taxon][pattern] state masks
	weights []int
	npat    int
}

// NewEvaluator encodes the alignment rows (raw characters, one string per
// taxon) and compresses identical columns into weighted patterns.
func NewEvaluator(alpha *Alphabet, mod *Model, names []string, rows []string) (*Evaluator, error) {
	if alpha == nil || mod == nil {
		return nil, fmt.Errorf("nstate: nil alphabet or model")
	}
	if alpha.Size != mod.Size {
		return nil, fmt.Errorf("nstate: alphabet has %d states, model %d", alpha.Size, mod.Size)
	}
	if len(names) != len(rows) || len(names) < 3 {
		return nil, fmt.Errorf("nstate: need >= 3 named rows (%d names, %d rows)", len(names), len(rows))
	}
	nt := len(names)
	ns := len(rows[0])
	enc := make([][]uint32, nt)
	for i, row := range rows {
		if len(row) != ns {
			return nil, fmt.Errorf("nstate: row %d has %d sites, want %d", i, len(row), ns)
		}
		enc[i] = make([]uint32, ns)
		for j := 0; j < ns; j++ {
			m, err := alpha.Encode(row[j])
			if err != nil {
				return nil, fmt.Errorf("nstate: taxon %q site %d: %w", names[i], j+1, err)
			}
			enc[i][j] = m
		}
	}

	ev := &Evaluator{
		Alpha: alpha, Mod: mod,
		names: append([]string(nil), names...),
		taxon: make(map[string]int, nt),
		data:  make([][]uint32, nt),
	}
	for i, n := range names {
		if _, dup := ev.taxon[n]; dup {
			return nil, fmt.Errorf("nstate: duplicate taxon %q", n)
		}
		ev.taxon[n] = i
	}
	// Pattern compression by column key.
	index := map[string]int{}
	col := make([]byte, nt*4)
	for j := 0; j < ns; j++ {
		for i := 0; i < nt; i++ {
			v := enc[i][j]
			col[4*i] = byte(v)
			col[4*i+1] = byte(v >> 8)
			col[4*i+2] = byte(v >> 16)
			col[4*i+3] = byte(v >> 24)
		}
		key := string(col)
		if k, ok := index[key]; ok {
			ev.weights[k]++
			continue
		}
		index[key] = len(ev.weights)
		ev.weights = append(ev.weights, 1)
		for i := 0; i < nt; i++ {
			ev.data[i] = append(ev.data[i], enc[i][j])
		}
	}
	ev.npat = len(ev.weights)
	return ev, nil
}

// NumPatterns reports the compressed pattern count.
func (ev *Evaluator) NumPatterns() int { return ev.npat }

// LogL computes the tree's log likelihood. The tree's taxa must be exactly
// the evaluator's (matched by name, any order).
func (ev *Evaluator) LogL(tr *phylotree.Tree) (float64, error) {
	if tr.NumTips() != len(ev.names) {
		return 0, fmt.Errorf("nstate: tree has %d tips, alignment %d", tr.NumTips(), len(ev.names))
	}
	for _, name := range tr.Taxa {
		if _, ok := ev.taxon[name]; !ok {
			return 0, fmt.Errorf("nstate: taxon %q not in alignment", name)
		}
	}
	n := ev.Mod.Size
	ncat := len(ev.Mod.Cats)

	// Partial vector of the subtree behind record r: [pat][cat][state],
	// plus per-pattern scale counts.
	type partial struct {
		lv []float64
		sc []int32
	}
	pbuf := make([]float64, ncat*n*n)

	var down func(r *phylotree.Node) (partial, error)
	tipVec := func(tip *phylotree.Node) []uint32 {
		return ev.data[ev.taxon[tip.Name]]
	}
	// project computes P(z)·child for every pattern/cat into out.
	project := func(r *phylotree.Node, child partial, childTip []uint32, out []float64) {
		for c := 0; c < ncat; c++ {
			ev.Mod.Transition(r.Z, ev.Mod.Cats[c], pbuf[c*n*n:(c+1)*n*n])
		}
		for pat := 0; pat < ev.npat; pat++ {
			for c := 0; c < ncat; c++ {
				pm := pbuf[c*n*n:]
				dst := out[(pat*ncat+c)*n:]
				if childTip != nil {
					mask := childTip[pat]
					for i := 0; i < n; i++ {
						s := 0.0
						for j := 0; j < n; j++ {
							if mask&(1<<uint(j)) != 0 {
								s += pm[i*n+j]
							}
						}
						dst[i] = s
					}
				} else {
					x := child.lv[(pat*ncat+c)*n:]
					for i := 0; i < n; i++ {
						s := 0.0
						for j := 0; j < n; j++ {
							s += pm[i*n+j] * x[j]
						}
						dst[i] = s
					}
				}
			}
		}
	}

	down = func(r *phylotree.Node) (partial, error) {
		nd := r.Back
		if nd == nil {
			return partial{}, fmt.Errorf("nstate: detached record")
		}
		out := partial{
			lv: make([]float64, ev.npat*ncat*n),
			sc: make([]int32, ev.npat),
		}
		// Projection of each child side, multiplied together.
		kids := 0
		tmp := make([]float64, ev.npat*ncat*n)
		apply := func(k *phylotree.Node) error {
			var child partial
			var tips []uint32
			if k.Back.IsTip() {
				tips = tipVec(k.Back)
			} else {
				var err error
				child, err = down(k)
				if err != nil {
					return err
				}
				for p := range out.sc {
					out.sc[p] += child.sc[p]
				}
			}
			project(k, child, tips, tmp)
			if kids == 0 {
				copy(out.lv, tmp)
			} else {
				for i := range out.lv {
					out.lv[i] *= tmp[i]
				}
			}
			kids++
			return nil
		}
		if nd.IsTip() {
			return partial{}, fmt.Errorf("nstate: down() on tip")
		}
		for _, k := range nd.Ring() {
			if k == nd {
				continue
			}
			if err := apply(k); err != nil {
				return partial{}, err
			}
		}
		// Scaling.
		for pat := 0; pat < ev.npat; pat++ {
			seg := out.lv[pat*ncat*n : (pat+1)*ncat*n]
			small := true
			for _, v := range seg {
				if !(math.Abs(v) < minLik) {
					small = false
					break
				}
			}
			if small {
				for i := range seg {
					seg[i] *= twoTo256
				}
				out.sc[pat]++
			}
		}
		return out, nil
	}

	// Evaluate across the branch (tips[0], tips[0].Back).
	anchor := tr.Tips[0]
	inner, err := down(anchor)
	if err != nil {
		return 0, err
	}
	// Project the inner vector across the anchor branch and dot with the
	// tip's allowed states and the frequencies.
	proj := make([]float64, ev.npat*ncat*n)
	project(anchor, inner, nil, proj)
	tips := tipVec(anchor)

	logL := 0.0
	invCats := 1.0 / float64(ncat)
	for pat := 0; pat < ev.npat; pat++ {
		site := 0.0
		mask := tips[pat]
		for c := 0; c < ncat; c++ {
			x := proj[(pat*ncat+c)*n:]
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					site += ev.Mod.Freqs[i] * x[i]
				}
			}
		}
		site *= invCats
		if site <= 0 || math.IsNaN(site) {
			site = math.SmallestNonzeroFloat64
		}
		logL += float64(ev.weights[pat]) * (math.Log(site) + float64(inner.sc[pat])*logMinLik)
	}
	return logL, nil
}
