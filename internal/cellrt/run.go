package cellrt

import (
	"fmt"

	"raxmlcell/internal/cell"
	"raxmlcell/internal/sim"
	"raxmlcell/internal/workload"
)

// Scheduler selects the parallelization policy of Section 5.3.
type Scheduler int

const (
	// SchedNaive is the initial port: each MPI process is pinned to a PPE
	// hardware thread, which it holds for its whole lifetime, busy-waiting
	// while its SPE computes. At most two processes make progress.
	SchedNaive Scheduler = iota
	// SchedEDTLP is event-driven task-level parallelization: the PPE is
	// oversubscribed with MPI processes and a process is switched out
	// whenever it offloads ("switch-on-offload"), so up to eight SPEs stay
	// busy.
	SchedEDTLP
	// SchedLLP is loop-level parallelization: each process distributes the
	// parallelizable loop portion of every offloaded call across several
	// SPEs.
	SchedLLP
	// SchedMGPS is the dynamic multi-grain scheduler: EDTLP while enough
	// task-level parallelism exists, with idle SPEs re-used for loop-level
	// parallelism as the bootstrap queue drains.
	SchedMGPS
)

func (s Scheduler) String() string {
	switch s {
	case SchedNaive:
		return "naive"
	case SchedEDTLP:
		return "edtlp"
	case SchedLLP:
		return "llp"
	case SchedMGPS:
		return "mgps"
	}
	return fmt.Sprintf("scheduler(%d)", int(s))
}

// Config parameterizes one simulated run.
type Config struct {
	Stage     Stage
	Scheduler Scheduler
	Workers   int // MPI processes (ignored by MGPS, which sizes itself)
	Searches  int // total bootstraps/inferences
	Episodes  int // scheduling quanta per search (default 150)
	// Offload overrides which kernel classes run on the SPE (nil = the
	// stage's default) — for ablations across the Section 5.2.7
	// progression.
	Offload OffloadSet
	// Tracer, when non-nil, records the run's timeline: engine-level
	// process events plus the runtime's own spans — PPE phases, per-SPE
	// compute and DMA-wait slices, signalling, job claims and MGPS SPE
	// adoption. obs.Tracer exports it as Chrome trace-event JSON; the
	// output is byte-deterministic for a given configuration.
	Tracer sim.Tracer
}

// Report is the outcome of a simulated run.
type Report struct {
	Config         Config
	Cycles         sim.Time
	Seconds        float64
	SPEUtilization []float64
	OffloadedCalls float64
	CommSeconds    float64
	MaxLLPWidth    int
}

// codeFootprint returns the SPE code module size per stage: the paper's
// single module with all three functions is 117 KB; the newview-only module
// is proportionally smaller.
func codeFootprint(stage Stage) int {
	if stage.offloadsAll() {
		return 117 * 1024
	}
	return 64 * 1024
}

// Run executes the workload on a simulated Cell and reports the makespan.
func Run(prof workload.Profile, cm cell.CostModel, params cell.Params, cfg Config) (*Report, error) {
	if cfg.Searches <= 0 {
		return nil, fmt.Errorf("cellrt: need at least one search, got %d", cfg.Searches)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Episodes <= 0 {
		cfg.Episodes = 150
	}
	if cfg.Scheduler == SchedMGPS {
		cfg.Workers = params.NumSPE
	}
	if cfg.Scheduler == SchedLLP && cfg.Workers > params.NumSPE/2 {
		return nil, fmt.Errorf("cellrt: LLP with %d workers leaves no SPEs for loop distribution", cfg.Workers)
	}

	m, err := cell.New(params)
	if err != nil {
		return nil, err
	}
	if cfg.Tracer != nil {
		m.Eng.SetTracer(cfg.Tracer)
	}
	sc := computeSearchCost(&prof, cfg.Stage, cm, cfg.Offload)
	r := &runner{
		m:    m,
		cm:   cm,
		cfg:  cfg,
		sc:   sc,
		jobs: cfg.Searches,
	}
	// One lock per SPE so that oversubscribed configurations serialize
	// instead of overlapping impossibly.
	r.speLocks = make([]*sim.Resource, params.NumSPE)
	for i := range r.speLocks {
		r.speLocks[i] = sim.NewResource(1)
	}

	// Provision local stores: code module + strip-mining buffers.
	if cfg.Stage.offloadsNewview() {
		nBufs := 1
		if cfg.Stage.doubleBuffered() {
			nBufs = 2
		}
		for _, spe := range m.SPEs {
			if err := spe.LS.Alloc("code", codeFootprint(cfg.Stage)); err != nil {
				return nil, err
			}
			if err := spe.LS.Alloc("dma-buffers", nBufs*int(prof.DMABatchBytes)); err != nil {
				return nil, err
			}
		}
	}

	switch cfg.Scheduler {
	case SchedNaive:
		r.spawnStatic(false, 1)
	case SchedEDTLP:
		r.spawnStatic(true, 1)
	case SchedLLP:
		k := params.NumSPE / cfg.Workers
		if k < 1 {
			k = 1
		}
		r.spawnStatic(false, k)
	case SchedMGPS:
		r.spawnMGPS()
	default:
		return nil, fmt.Errorf("cellrt: unknown scheduler %v", cfg.Scheduler)
	}

	if err := m.Eng.Run(); err != nil {
		return nil, fmt.Errorf("cellrt: simulation: %w", err)
	}

	rep := &Report{
		Config:         cfg,
		Cycles:         m.Eng.Now(),
		Seconds:        m.Seconds(m.Eng.Now()),
		OffloadedCalls: sc.offloadedCalls * float64(cfg.Searches),
		CommSeconds:    sc.commCycles * float64(cfg.Searches) / params.ClockHz,
		MaxLLPWidth:    r.maxLLP,
	}
	for _, spe := range m.SPEs {
		rep.SPEUtilization = append(rep.SPEUtilization, spe.Utilization())
	}
	return rep, nil
}

// runner carries the shared state of one simulated run.
type runner struct {
	m        *cell.Machine
	cm       cell.CostModel
	cfg      Config
	sc       searchCost
	speLocks []*sim.Resource

	jobs     int // searches not yet claimed
	active   int // workers currently holding a job (MGPS)
	idleSPEs []int
	maxLLP   int
}

func (r *runner) smtFactor() float64 {
	if r.m.PPE.Threads.InUse() >= 2 {
		return r.cm.PPESMTFactor
	}
	return 1
}

// episode quantities (per scheduling quantum).
func (r *runner) perEpisode() (ppe, serial, parallel, dma, comm float64) {
	e := float64(r.cfg.Episodes)
	return r.sc.ppeCycles / e, r.sc.speSerial / e, r.sc.speParallel / e, r.sc.dmaWait / e, r.sc.commCycles / e
}

// switchPerEpisode is the event-driven scheduler's PPE overhead per episode:
// two process context switches per offloaded call (switch out on offload,
// switch back in on completion).
func (r *runner) switchPerEpisode() float64 {
	return 2 * r.cm.ContextSwitch * r.sc.offloadedCalls / float64(r.cfg.Episodes)
}

// takeJob claims the next search, or returns false.
func (r *runner) takeJob() bool {
	if r.jobs == 0 {
		return false
	}
	r.jobs--
	return true
}

// trace shorthands; every call site must tolerate a nil tracer.

func (r *runner) traceInstant(p *sim.Proc, name, cat string) {
	if t := r.cfg.Tracer; t != nil {
		t.Instant(p.Name, name, cat, p.Now())
	}
}

func (r *runner) traceSpan(track, name, cat string, from, to sim.Time) {
	if t := r.cfg.Tracer; t != nil {
		t.Span(track, name, cat, from, to)
	}
}

// traceJobs samples the depth of the shared job queue — the series that
// makes the MGPS drain phase visible on the timeline.
func (r *runner) traceJobs(p *sim.Proc) {
	if t := r.cfg.Tracer; t != nil {
		t.Counter("scheduler", "jobs-pending", p.Now(), float64(r.jobs))
	}
}

func speTrack(id int) string { return fmt.Sprintf("spe%d", id) }

// spawnStatic launches cfg.Workers processes with a fixed policy:
// eventDriven selects busy-wait (naive) versus switch-on-offload (EDTLP);
// k is the fixed LLP width (1 = pure task-level).
func (r *runner) spawnStatic(eventDriven bool, k int) {
	if k > r.maxLLP {
		r.maxLLP = k
	}
	for w := 0; w < r.cfg.Workers; w++ {
		w := w
		speSet := make([]int, k)
		for i := 0; i < k; i++ {
			speSet[i] = (w*k + i) % r.m.NumSPE
		}
		r.m.Eng.Spawn(fmt.Sprintf("mpi-%d", w), func(p *sim.Proc) {
			if !eventDriven {
				// The naive port pins the process to a PPE thread for its
				// whole lifetime.
				r.m.PPE.Threads.Acquire(p, 1)
				defer r.m.PPE.Threads.Release(1)
			}
			for r.takeJob() {
				job := r.cfg.Searches - r.jobs - 1
				r.traceInstant(p, fmt.Sprintf("claim search#%d", job), "sched")
				r.traceJobs(p)
				start := p.Now()
				r.runSearch(p, speSet, eventDriven)
				r.traceSpan(p.Name, fmt.Sprintf("search#%d", job), "job", start, p.Now())
			}
		})
	}
}

// runSearch executes one search's episodes on the given SPE set.
func (r *runner) runSearch(p *sim.Proc, speSet []int, eventDriven bool) {
	ppeE, serialE, parE, dmaE, commE := r.perEpisode()
	offload := r.cfg.Stage.offloadedIn(workload.Newview, r.cfg.Offload)
	for e := 0; e < r.cfg.Episodes; e++ {
		if eventDriven {
			t0 := p.Now()
			r.m.PPE.Threads.Acquire(p, 1)
			r.traceSpan(p.Name, "ppe-wait", "ppe", t0, p.Now())
			t1 := p.Now()
			p.Advance(sim.Time((r.switchPerEpisode() + ppeE + commE/2) * r.smtFactor()))
			r.traceSpan(p.Name, "ppe", "ppe", t1, p.Now())
			r.m.PPE.Threads.Release(1)
		} else {
			t0 := p.Now()
			p.Advance(sim.Time(ppeE * r.smtFactor()))
			r.traceSpan(p.Name, "ppe", "ppe", t0, p.Now())
			if offload {
				// Mailbox/MMIO signalling executes on the PPE and contends
				// with the other SMT thread — which is why the paper finds
				// the direct-communication optimization "scales with
				// parallelism" (Section 5.2.6).
				t1 := p.Now()
				p.Advance(sim.Time(commE / 2 * r.smtFactor()))
				r.traceSpan(p.Name, "signal", "comm", t1, p.Now())
			}
		}
		if offload {
			r.computeOnSPEs(p, speSet, serialE, parE, dmaE)
			t2 := p.Now()
			p.Advance(sim.Time(commE / 2 * r.smtFactor()))
			r.traceSpan(p.Name, "signal", "comm", t2, p.Now())
		}
	}
}

// computeOnSPEs charges one episode's SPE work across the worker's SPE set
// (loop-level distribution when len > 1), serializing on each SPE's lock.
func (r *runner) computeOnSPEs(p *sim.Proc, speSet []int, serial, parallel, dma float64) {
	k := len(speSet)
	if k > r.maxLLP {
		r.maxLLP = k
	}
	share := parallel / float64(k)
	barrier := r.cm.LLPBarrier * float64(k-1)
	primary := r.speLocks[speSet[0]]
	t0 := p.Now()
	primary.Acquire(p, 1)
	start := p.Now()
	r.traceSpan(p.Name, "spe-wait", "sched", t0, start)
	// Busy-time accounting on every participating SPE.
	for i, id := range speSet {
		c := share
		if i == 0 {
			c += serial + dma
		}
		r.m.SPEs[id].AddBusy(sim.Time(c))
		if dma > 0 && i == 0 {
			// The primary SPE stalls on strip-mining DMA before computing
			// (zero when the stage double-buffers).
			r.traceSpan(speTrack(id), "dma-wait", "dma", start, start+sim.Time(dma))
		}
		r.traceSpan(speTrack(id), "compute", "spe", start, start+sim.Time(c))
	}
	p.Advance(sim.Time(serial + dma + share + barrier))
	r.traceSpan(p.Name, "offload", "spe", start, p.Now())
	primary.Release(1)
}

// spawnMGPS launches the dynamic scheduler: NumSPE event-driven workers
// share the job queue; when the queue drains, exiting workers donate their
// SPEs to an idle pool that the remaining workers adopt for LLP.
func (r *runner) spawnMGPS() {
	for w := 0; w < r.cfg.Workers; w++ {
		w := w
		r.m.Eng.Spawn(fmt.Sprintf("mgps-%d", w), func(p *sim.Proc) {
			mySPEs := []int{w % r.m.NumSPE}
			for {
				if !r.takeJob() {
					// Donate SPEs to workers that still have work.
					r.idleSPEs = append(r.idleSPEs, mySPEs...)
					r.traceInstant(p, fmt.Sprintf("donate %d spe(s)", len(mySPEs)), "sched")
					return
				}
				job := r.cfg.Searches - r.jobs - 1
				r.traceInstant(p, fmt.Sprintf("claim search#%d", job), "sched")
				r.traceJobs(p)
				start := p.Now()
				r.active++
				r.runSearchMGPS(p, &mySPEs)
				r.active--
				r.traceSpan(p.Name, fmt.Sprintf("search#%d", job), "job", start, p.Now())
			}
		})
	}
}

func (r *runner) runSearchMGPS(p *sim.Proc, mySPEs *[]int) {
	ppeE, serialE, parE, dmaE, commE := r.perEpisode()
	offload := r.cfg.Stage.offloadedIn(workload.Newview, r.cfg.Offload)
	for e := 0; e < r.cfg.Episodes; e++ {
		// Adopt idle SPEs up to a fair share of the machine.
		r.adoptSPEs(p, mySPEs)
		t0 := p.Now()
		r.m.PPE.Threads.Acquire(p, 1)
		r.traceSpan(p.Name, "ppe-wait", "ppe", t0, p.Now())
		t1 := p.Now()
		p.Advance(sim.Time((r.switchPerEpisode() + ppeE + commE/2) * r.smtFactor()))
		r.traceSpan(p.Name, "ppe", "ppe", t1, p.Now())
		r.m.PPE.Threads.Release(1)
		if offload {
			r.computeOnSPEs(p, *mySPEs, serialE, parE, dmaE)
			t2 := p.Now()
			p.Advance(sim.Time(commE / 2))
			r.traceSpan(p.Name, "signal", "comm", t2, p.Now())
		} else {
			// PPE-only stage under MGPS degenerates to EDTLP timeslicing.
			continue
		}
	}
}

func (r *runner) adoptSPEs(p *sim.Proc, mySPEs *[]int) {
	if len(r.idleSPEs) == 0 {
		return
	}
	workers := r.active
	if workers < 1 {
		workers = 1
	}
	fair := r.m.NumSPE / workers
	if fair < 1 {
		fair = 1
	}
	for len(*mySPEs) < fair && len(r.idleSPEs) > 0 {
		n := len(r.idleSPEs) - 1
		*mySPEs = append(*mySPEs, r.idleSPEs[n])
		r.traceInstant(p, fmt.Sprintf("adopt spe%d", r.idleSPEs[n]), "sched")
		r.idleSPEs = r.idleSPEs[:n]
	}
}
