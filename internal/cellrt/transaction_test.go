package cellrt

import (
	"math"
	"testing"

	"raxmlcell/internal/cell"
	"raxmlcell/internal/workload"
)

func TestTransactionMatchesAnalyticCost(t *testing.T) {
	// The microscopic simulation of one offloaded call — real mailbox, real
	// strip-mined DMA — must agree with the analytic per-call cost that the
	// table runs charge, within the discretization of batch rounding.
	params := cell.DefaultParams()
	cm := cell.DefaultCostModel()
	ops := workload.Profile42SC().Classes[workload.Newview].PerCall

	for _, stage := range []Stage{StageNaiveOffload, StageSDKExp, StageVectorCond, StageDoubleBuffer, StageVectorFP, StageDirectComm} {
		rep, err := SimulateTransaction(params, cm, ops, stage, 2048)
		if err != nil {
			t.Fatal(err)
		}
		cc := costsFor(ops, stage, cm, 2048)
		analytic := cc.speTotal() + cc.comm

		got := float64(rep.TotalCycles)
		// The machine's DMA uses its own startup/bandwidth parameters; the
		// analytic model uses the memory-system constants. They are close
		// but not identical, so compare within 12%.
		if dev := math.Abs(got-analytic) / analytic; dev > 0.12 {
			t.Errorf("%v: transaction %d cycles vs analytic %.0f (%.1f%% apart)",
				stage, rep.TotalCycles, analytic, 100*dev)
		}
		if rep.Batches != 14 { // 228*128 bytes / 2048
			t.Errorf("%v: %d batches", stage, rep.Batches)
		}
		if stage.doubleBuffered() {
			// Compute dominates each 2 KB transfer, so almost all DMA hides.
			if rep.DMAWaitCycles > rep.TotalCycles/20 {
				t.Errorf("%v: double buffering left %d cycles of DMA stall (total %d)",
					stage, rep.DMAWaitCycles, rep.TotalCycles)
			}
		} else if rep.DMAWaitCycles == 0 {
			t.Errorf("%v: synchronous DMA shows no stall", stage)
		}
	}
}

func TestTransactionSignallingStyles(t *testing.T) {
	params := cell.DefaultParams()
	cm := cell.DefaultCostModel()
	ops := workload.Profile42SC().Classes[workload.Newview].PerCall

	mb, err := SimulateTransaction(params, cm, ops, StageVectorFP, 2048)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := SimulateTransaction(params, cm, ops, StageDirectComm, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if dc.SignalCycles >= mb.SignalCycles {
		t.Errorf("direct signalling (%d) not cheaper than mailbox (%d)", dc.SignalCycles, mb.SignalCycles)
	}
	if dc.TotalCycles >= mb.TotalCycles {
		t.Errorf("direct-comm transaction (%d) not faster than mailbox (%d)", dc.TotalCycles, mb.TotalCycles)
	}
}

func TestTransactionValidation(t *testing.T) {
	params := cell.DefaultParams()
	cm := cell.DefaultCostModel()
	ops := workload.Profile42SC().Classes[workload.Newview].PerCall
	if _, err := SimulateTransaction(params, cm, ops, StagePPEOnly, 2048); err == nil {
		t.Error("PPE-only transaction accepted")
	}
	if _, err := SimulateTransaction(params, cm, ops, StageVectorFP, 1000); err == nil {
		t.Error("unaligned batch size accepted")
	}
	if _, err := SimulateTransaction(params, cm, ops, StageVectorFP, 0); err == nil {
		t.Error("zero batch size accepted")
	}
}
