package cellrt

import (
	"testing"

	"raxmlcell/internal/cell"
	"raxmlcell/internal/workload"
)

func TestStagePredicatesCumulative(t *testing.T) {
	// Each optimization, once enabled, stays enabled in later stages.
	preds := []func(Stage) bool{
		Stage.offloadsNewview,
		Stage.sdkExp,
		Stage.vectorCond,
		Stage.doubleBuffered,
		Stage.vectorFP,
		Stage.directComm,
		Stage.offloadsAll,
	}
	for _, pred := range preds {
		seen := false
		for s := StagePPEOnly; s < NumStages; s++ {
			v := pred(s)
			if seen && !v {
				t.Errorf("predicate turned off again at stage %v", s)
			}
			seen = seen || v
		}
		if !seen {
			t.Error("predicate never enabled")
		}
	}
	if StagePPEOnly.offloadsNewview() {
		t.Error("PPE-only offloads")
	}
	if !StageAllOffloaded.offloads(workload.Makenewz) {
		t.Error("final stage does not offload makenewz")
	}
	if StageDirectComm.offloads(workload.Makenewz) {
		t.Error("pre-final stage offloads makenewz")
	}
}

func TestStageStrings(t *testing.T) {
	if StageNaiveOffload.String() != "naive-offload" || Stage(99).String() == "" {
		t.Error("stage names wrong")
	}
	for _, s := range []Scheduler{SchedNaive, SchedEDTLP, SchedLLP, SchedMGPS, Scheduler(9)} {
		if s.String() == "" {
			t.Error("scheduler name empty")
		}
	}
}

func TestCostsForMonotonicity(t *testing.T) {
	cm := cell.DefaultCostModel()
	ops := workload.Profile42SC().Classes[workload.Newview].PerCall
	base := costsFor(ops, StageNaiveOffload, cm, 2048)
	sdk := costsFor(ops, StageSDKExp, cm, 2048)
	cond := costsFor(ops, StageVectorCond, cm, 2048)
	dbuf := costsFor(ops, StageDoubleBuffer, cm, 2048)
	vec := costsFor(ops, StageVectorFP, cm, 2048)
	comm := costsFor(ops, StageDirectComm, cm, 2048)

	if !(base.speTotal() > sdk.speTotal() && sdk.speTotal() > cond.speTotal()) {
		t.Errorf("exp/cond optimizations not monotone: %v %v %v",
			base.speTotal(), sdk.speTotal(), cond.speTotal())
	}
	if dbuf.dmaWait != 0 || cond.dmaWait == 0 {
		t.Errorf("double buffering did not absorb DMA wait: %v -> %v", cond.dmaWait, dbuf.dmaWait)
	}
	if vec.speTotal() >= dbuf.speTotal() {
		t.Error("vectorization did not help")
	}
	if comm.comm >= vec.comm {
		t.Error("direct comm not cheaper than mailbox")
	}
	// PPE cost is stage-independent.
	if base.ppe != comm.ppe {
		t.Error("PPE cost changed across stages")
	}
}

func TestComputeSearchCostOffloadBoundary(t *testing.T) {
	prof := workload.Profile42SC()
	cm := cell.DefaultCostModel()
	ppeOnly := computeSearchCost(&prof, StagePPEOnly, cm, nil)
	partial := computeSearchCost(&prof, StageDirectComm, cm, nil)
	full := computeSearchCost(&prof, StageAllOffloaded, cm, nil)

	if ppeOnly.speTotal() != 0 || ppeOnly.commCycles != 0 {
		t.Error("PPE-only stage has SPE or comm cycles")
	}
	if partial.ppeCycles >= ppeOnly.ppeCycles {
		t.Error("offloading newview did not reduce PPE cycles")
	}
	if full.ppeCycles >= partial.ppeCycles {
		t.Error("offloading all three did not reduce PPE cycles further")
	}
	if full.ppeCycles != prof.OrchestrationCycles {
		t.Errorf("fully offloaded PPE cycles = %g, want orchestration only %g",
			full.ppeCycles, prof.OrchestrationCycles)
	}
	// Nested calls reduce the communication count in the final stage.
	if full.offloadedCalls >= partial.offloadedCalls+prof.Classes[workload.Makenewz].Count {
		t.Error("nested newview calls still pay communication")
	}
}

func TestOffloadSubsetProgression(t *testing.T) {
	// Section 5.2.7: offloading makenewz and evaluate on top of newview
	// brings further speedup; each addition must improve.
	prof := workload.Profile42SC()
	cm := cell.DefaultCostModel()
	params := cell.DefaultParams()
	run := func(set OffloadSet) float64 {
		rep, err := Run(prof, cm, params, Config{
			Stage: StageAllOffloaded, Scheduler: SchedNaive,
			Workers: 1, Searches: 1, Offload: set,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Seconds
	}
	nvOnly := run(OffloadSet{workload.Newview: true})
	nvMk := run(OffloadSet{workload.Newview: true, workload.Makenewz: true})
	all := run(OffloadSet{workload.Newview: true, workload.Makenewz: true, workload.Evaluate: true})
	def := run(nil)
	if !(nvOnly > nvMk && nvMk > all) {
		t.Errorf("offload progression not monotone: nv=%.2f nv+mk=%.2f all=%.2f", nvOnly, nvMk, all)
	}
	if all != def {
		t.Errorf("explicit full set (%.2f) differs from stage default (%.2f)", all, def)
	}
	// makenewz is the big remaining chunk: most of the nv-only -> all gap.
	if gain, mkGain := nvOnly-all, nvOnly-nvMk; mkGain < gain/2 {
		t.Errorf("makenewz offload contributes %.2fs of %.2fs; expected the majority", mkGain, gain)
	}
}

func TestRunValidation(t *testing.T) {
	prof := workload.Profile42SC()
	cm := cell.DefaultCostModel()
	params := cell.DefaultParams()
	if _, err := Run(prof, cm, params, Config{Searches: 0}); err == nil {
		t.Error("0 searches accepted")
	}
	if _, err := Run(prof, cm, params, Config{Searches: 1, Scheduler: SchedLLP, Workers: 8}); err == nil {
		t.Error("LLP with 8 workers accepted")
	}
	if _, err := Run(prof, cm, params, Config{Searches: 1, Scheduler: Scheduler(42)}); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestEDTLPBeatsNaiveWithManyWorkers(t *testing.T) {
	// With 8 workers the naive port can only hold 2 PPE threads; EDTLP
	// multiplexes all 8 over the SPEs — the paper's core scheduling claim.
	prof := workload.Profile42SC()
	cm := cell.DefaultCostModel()
	params := cell.DefaultParams()
	naive, err := Run(prof, cm, params, Config{
		Stage: StageAllOffloaded, Scheduler: SchedNaive, Workers: 8, Searches: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	edtlp, err := Run(prof, cm, params, Config{
		Stage: StageAllOffloaded, Scheduler: SchedEDTLP, Workers: 8, Searches: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if edtlp.Seconds >= naive.Seconds {
		t.Errorf("EDTLP (%.2fs) not faster than naive (%.2fs) at 8 workers", edtlp.Seconds, naive.Seconds)
	}
	// EDTLP should engage many SPEs.
	busy := 0
	for _, u := range edtlp.SPEUtilization {
		if u > 0.05 {
			busy++
		}
	}
	if busy < 8 {
		t.Errorf("EDTLP used only %d SPEs", busy)
	}
}

func TestLLPHelpsSingleWorker(t *testing.T) {
	// One task cannot fill the machine with task-level parallelism; LLP
	// spreads its loops over all 8 SPEs.
	prof := workload.Profile42SC()
	cm := cell.DefaultCostModel()
	params := cell.DefaultParams()
	task, err := Run(prof, cm, params, Config{
		Stage: StageAllOffloaded, Scheduler: SchedNaive, Workers: 1, Searches: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	llp, err := Run(prof, cm, params, Config{
		Stage: StageAllOffloaded, Scheduler: SchedLLP, Workers: 1, Searches: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if llp.Seconds >= task.Seconds {
		t.Errorf("LLP (%.2fs) not faster than single-SPE (%.2fs)", llp.Seconds, task.Seconds)
	}
	if llp.MaxLLPWidth != 8 {
		t.Errorf("LLP width = %d, want 8", llp.MaxLLPWidth)
	}
}

func TestMGPSAdoptsIdleSPEs(t *testing.T) {
	// 9 searches on 8 workers: the straggler's second search should adopt
	// donated SPEs and finish with LLP width > 1.
	prof := workload.Profile42SC()
	cm := cell.DefaultCostModel()
	params := cell.DefaultParams()
	rep, err := Run(prof, cm, params, Config{
		Stage: StageAllOffloaded, Scheduler: SchedMGPS, Searches: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxLLPWidth < 2 {
		t.Errorf("MGPS never widened beyond %d SPEs", rep.MaxLLPWidth)
	}
	// And it must beat running 9 searches EDTLP-only... at minimum not lose.
	edtlp, err := Run(prof, cm, params, Config{
		Stage: StageAllOffloaded, Scheduler: SchedEDTLP, Workers: 8, Searches: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seconds > edtlp.Seconds*1.02 {
		t.Errorf("MGPS (%.2fs) slower than EDTLP (%.2fs)", rep.Seconds, edtlp.Seconds)
	}
}

func TestCommunicationScalesWithParallelism(t *testing.T) {
	// Section 5.2.6: the benefit of direct signalling grows with the number
	// of workers. Compare mailbox and direct stages at 1 and 2 workers:
	// the relative gain must grow.
	prof := workload.Profile42SC()
	cm := cell.DefaultCostModel()
	params := cell.DefaultParams()
	gain := func(workers, searches int) float64 {
		mb, err := Run(prof, cm, params, Config{
			Stage: StageVectorFP, Scheduler: SchedNaive, Workers: workers, Searches: searches,
		})
		if err != nil {
			t.Fatal(err)
		}
		dc, err := Run(prof, cm, params, Config{
			Stage: StageDirectComm, Scheduler: SchedNaive, Workers: workers, Searches: searches,
		})
		if err != nil {
			t.Fatal(err)
		}
		return 1 - dc.Seconds/mb.Seconds
	}
	g1 := gain(1, 1)
	g2 := gain(2, 8)
	if g1 <= 0 || g2 <= 0 {
		t.Fatalf("direct comm not a gain: %v %v", g1, g2)
	}
	if g2 < g1 {
		t.Errorf("comm gain shrank with parallelism: %.3f -> %.3f", g1, g2)
	}
}

func TestLocalStoreProvisioning(t *testing.T) {
	prof := workload.Profile42SC()
	cm := cell.DefaultCostModel()
	params := cell.DefaultParams()
	rep, err := Run(prof, cm, params, Config{
		Stage: StageAllOffloaded, Scheduler: SchedNaive, Workers: 1, Searches: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = rep
	// A local store too small for the code module must fail.
	params.LocalStoreBytes = 100 * 1024
	if _, err := Run(prof, cm, params, Config{
		Stage: StageAllOffloaded, Scheduler: SchedNaive, Workers: 1, Searches: 1,
	}); err == nil {
		t.Error("117 KB module fit in a 100 KB local store")
	}
	// The newview-only module is smaller and still fits.
	if _, err := Run(prof, cm, params, Config{
		Stage: StageNaiveOffload, Scheduler: SchedNaive, Workers: 1, Searches: 1,
	}); err != nil {
		t.Errorf("newview-only module rejected: %v", err)
	}
}

func TestReportFields(t *testing.T) {
	prof := workload.Profile42SC()
	rep, err := Run(prof, cell.DefaultCostModel(), cell.DefaultParams(), Config{
		Stage: StageDirectComm, Scheduler: SchedNaive, Workers: 2, Searches: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seconds <= 0 || rep.Cycles == 0 {
		t.Error("empty timing")
	}
	if len(rep.SPEUtilization) != 8 {
		t.Errorf("utilization entries = %d", len(rep.SPEUtilization))
	}
	if rep.OffloadedCalls <= 0 || rep.CommSeconds <= 0 {
		t.Error("missing offload statistics")
	}
	// Two workers -> exactly two busy SPEs under the naive scheduler.
	busy := 0
	for _, u := range rep.SPEUtilization {
		if u > 0 {
			busy++
		}
	}
	if busy != 2 {
		t.Errorf("busy SPEs = %d, want 2", busy)
	}
}

func TestDeterministicRuns(t *testing.T) {
	prof := workload.Profile42SC()
	cm := cell.DefaultCostModel()
	params := cell.DefaultParams()
	cfg := Config{Stage: StageAllOffloaded, Scheduler: SchedMGPS, Searches: 5}
	a, err := Run(prof, cm, params, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(prof, cm, params, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Errorf("non-deterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}
