// Package cellrt is the port runtime of the reproduction: it executes the
// RAxML kernel workload (internal/workload) on the simulated Cell
// (internal/cell) under the paper's staged optimizations and scheduling
// policies, producing the execution times of Tables 1-8.
//
// The split of responsibilities mirrors the paper's methodology: the
// likelihood kernels' operation mix comes from the workload profile, the
// per-operation cycle costs from the machine's cost model, and the dynamic
// behaviour — PPE SMT contention, SPE assignment, busy-wait versus
// event-driven scheduling, loop-level work distribution — from the
// discrete-event simulation.
package cellrt

import (
	"fmt"

	"raxmlcell/internal/cell"
	"raxmlcell/internal/workload"
)

// Stage is a cumulative optimization level, one per table of Section 5.
type Stage int

const (
	// StagePPEOnly runs the whole application on the PPE (Table 1a).
	StagePPEOnly Stage = iota
	// StageNaiveOffload moves newview() to one SPE per worker with no
	// SPE-side optimization: libm exp, scalar conditionals, synchronous
	// DMA, mailbox signalling (Table 1b).
	StageNaiveOffload
	// StageSDKExp replaces libm exp() with the SDK numerical exp (Table 2).
	StageSDKExp
	// StageVectorCond casts and vectorizes the scaling conditional (Table 3).
	StageVectorCond
	// StageDoubleBuffer overlaps DMA with computation (Table 4).
	StageDoubleBuffer
	// StageVectorFP vectorizes the two floating point loops (Table 5).
	StageVectorFP
	// StageDirectComm signals through memory instead of mailboxes (Table 6).
	StageDirectComm
	// StageAllOffloaded moves makenewz() and evaluate() to the SPE too
	// (Table 7).
	StageAllOffloaded
	NumStages
)

var stageNames = [NumStages]string{
	"ppe-only",
	"naive-offload",
	"sdk-exp",
	"vector-cond",
	"double-buffer",
	"vector-fp",
	"direct-comm",
	"all-offloaded",
}

func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// Cumulative optimization predicates.
func (s Stage) offloadsNewview() bool { return s >= StageNaiveOffload }
func (s Stage) sdkExp() bool          { return s >= StageSDKExp }
func (s Stage) vectorCond() bool      { return s >= StageVectorCond }
func (s Stage) doubleBuffered() bool  { return s >= StageDoubleBuffer }
func (s Stage) vectorFP() bool        { return s >= StageVectorFP }
func (s Stage) directComm() bool      { return s >= StageDirectComm }
func (s Stage) offloadsAll() bool     { return s >= StageAllOffloaded }
func (s Stage) offloads(c workload.Class) bool {
	if c == workload.Newview {
		return s.offloadsNewview()
	}
	return s.offloadsAll()
}

// classCosts is the per-invocation cycle breakdown of one kernel class
// under a given stage.
type classCosts struct {
	speSerial   float64 // SPE cycles that stay serial under LLP
	speParallel float64 // SPE cycles divisible across SPEs under LLP
	dmaWait     float64 // synchronous DMA stall (0 when double-buffered)
	ppe         float64 // PPE cycles per call when the class is NOT offloaded
	comm        float64 // PPE<->SPE round-trip cycles per offloaded call
}

func (cc classCosts) speTotal() float64 { return cc.speSerial + cc.speParallel + cc.dmaWait }

// costsFor derives the per-call cost vector of a class from its operation
// counts, the machine cost model, and the active optimization stage.
func costsFor(ops workload.Ops, stage Stage, cm cell.CostModel, batchBytes float64) classCosts {
	var cc classCosts

	// --- SPE execution ---
	flop := cm.SPEFlopScalar
	vecOverhead := 0.0
	if stage.vectorFP() {
		flop = cm.SPEFlopVector
		vecOverhead = cm.SPEVectorOverhead * ops.LoopIters
	}
	exp := cm.SPEExpLibm
	if stage.sdkExp() {
		exp = cm.SPEExpSDK
	}
	cond := cm.SPECondScalar
	if stage.vectorCond() {
		cond = cm.SPECondVector
	}
	loopWork := ops.LoopFlops*flop + vecOverhead + ops.ScaleChecks*cond + ops.ScaleEvents*cm.SPEScaleBody
	serialWork := ops.Exps*exp + ops.Logs*cm.SPELog

	// The overhead constant covers addressing/bookkeeping; its parallel
	// share distributes with the loops under LLP.
	cc.speParallel = ops.ParallelFrac*ops.OverheadSPE + loopWork
	cc.speSerial = (1-ops.ParallelFrac)*ops.OverheadSPE + serialWork

	// Strip-mining DMA: without double buffering the SPE stalls for each
	// batch; with it, transfers hide behind the loop computation (the paper
	// measures the 11.4% idle time going to zero).
	if ops.Bytes > 0 && batchBytes > 0 {
		batches := ops.Bytes / batchBytes
		if batches < 1 {
			batches = 1
		}
		dma := batches * (cm.DMABatchStartup + batchBytes/cm.MemBytesPerCycle)
		if !stage.doubleBuffered() {
			cc.dmaWait = dma
		}
	}

	// --- PPE execution (when not offloaded) ---
	cc.ppe = ops.OverheadPPE +
		ops.LoopFlops*cm.PPEFlop +
		ops.Exps*cm.PPEExp +
		ops.Logs*cm.PPELog +
		ops.ScaleChecks*cm.PPECond

	// --- communication ---
	if stage.directComm() {
		cc.comm = cm.DirectRoundTrip
	} else {
		cc.comm = cm.MailboxRoundTrip
	}
	return cc
}

// OffloadSet selects which kernel classes run on the SPE, for ablations
// between the paper's newview-only stages and the full Table 7 port
// (Section 5.2.7 walks exactly this progression). A nil set means "follow
// the stage's default".
type OffloadSet map[workload.Class]bool

// offloaded resolves the effective offload decision for a class.
func (s Stage) offloadedIn(c workload.Class, custom OffloadSet) bool {
	if custom != nil {
		return custom[c]
	}
	return s.offloads(c)
}

// searchCost aggregates a whole search (one bootstrap/inference) under a
// stage into the quantities the schedulers operate on.
type searchCost struct {
	ppeCycles      float64 // PPE work incl. orchestration and non-offloaded kernels
	speSerial      float64 // SPE serial cycles
	speParallel    float64 // SPE cycles divisible under LLP
	dmaWait        float64
	commCycles     float64 // total signalling cost
	offloadedCalls float64 // top-level offloaded invocations (for statistics)
}

func (sc searchCost) speTotal() float64 { return sc.speSerial + sc.speParallel + sc.dmaWait }

// computeSearchCost folds the profile's classes under the given stage,
// optionally overriding which classes are offloaded.
func computeSearchCost(prof *workload.Profile, stage Stage, cm cell.CostModel, custom OffloadSet) searchCost {
	var sc searchCost
	sc.ppeCycles = prof.OrchestrationCycles
	allThree := stage.offloadedIn(workload.Newview, custom) &&
		stage.offloadedIn(workload.Makenewz, custom) &&
		stage.offloadedIn(workload.Evaluate, custom)
	for c := workload.Class(0); c < workload.NumClasses; c++ {
		cp := prof.Classes[c]
		if cp.Count == 0 {
			continue
		}
		cc := costsFor(cp.PerCall, stage, cm, prof.DMABatchBytes)
		if !stage.offloadedIn(c, custom) {
			sc.ppeCycles += cp.Count * cc.ppe
			continue
		}
		sc.speSerial += cp.Count * cc.speSerial
		sc.speParallel += cp.Count * cc.speParallel
		sc.dmaWait += cp.Count * cc.dmaWait
		calls := cp.Count
		if c == workload.Newview && allThree {
			// Nested newview calls from makenewz/evaluate stay on the SPE:
			// no PPE round trip (Section 5.2.7).
			calls *= 1 - prof.NestedFrac
		}
		sc.commCycles += calls * cc.comm
		sc.offloadedCalls += calls
	}
	return sc
}
