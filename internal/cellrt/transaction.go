package cellrt

import (
	"fmt"

	"raxmlcell/internal/cell"
	"raxmlcell/internal/sim"
	"raxmlcell/internal/workload"
)

// TransactionReport is the timing breakdown of one offloaded kernel
// invocation played through the machine's actual primitives — mailbox or
// direct-memory signalling, strip-mined DMA with or without double
// buffering, and SPE computation.
//
// The table-reproduction fast path (Run) charges invocation costs
// analytically; SimulateTransaction is the microscopic cross-check that the
// analytic per-call cost matches what the modeled hardware actually does,
// and the reference example of programming against the cell package's MFC
// and mailbox APIs.
type TransactionReport struct {
	TotalCycles   sim.Time
	ComputeCycles sim.Time
	DMAWaitCycles sim.Time
	SignalCycles  sim.Time
	Batches       int
}

// SimulateTransaction runs one kernel invocation end to end on a fresh
// machine: the PPE signals the SPE, the SPE strips the likelihood vectors
// through its local store while computing, and completion is signalled
// back. The stage selects signalling style and buffering discipline exactly
// as in the table runs.
func SimulateTransaction(params cell.Params, cm cell.CostModel, ops workload.Ops, stage Stage, batchBytes int) (*TransactionReport, error) {
	if !stage.offloadsNewview() {
		return nil, fmt.Errorf("cellrt: stage %v does not offload", stage)
	}
	if batchBytes <= 0 || batchBytes%16 != 0 {
		return nil, fmt.Errorf("cellrt: batch size %d must be a positive multiple of 16", batchBytes)
	}
	m, err := cell.New(params)
	if err != nil {
		return nil, err
	}
	spe := m.SPEs[0]
	nBufs := 1
	if stage.doubleBuffered() {
		nBufs = 2
	}
	if err := spe.LS.Alloc("code", codeFootprint(stage)); err != nil {
		return nil, err
	}
	if err := spe.LS.Alloc("dma-buffers", nBufs*batchBytes); err != nil {
		return nil, err
	}

	cc := costsFor(ops, stage, cm, float64(batchBytes))
	batches := int(ops.Bytes / float64(batchBytes))
	if batches < 1 {
		batches = 1
	}
	computePerBatch := sim.Time((cc.speSerial + cc.speParallel) / float64(batches))

	rep := &TransactionReport{Batches: batches}
	var done sim.Cond

	// The SPE thread: busy-waits for the start signal, then strip-mines.
	m.Eng.Spawn("spe-thread", func(p *sim.Proc) {
		start := spe.Mailbox.Recv(p) // both signalling styles deliver here;
		_ = start                    // the cost difference is charged by the PPE side
		computeStart := p.Now()
		var dmaWait sim.Time
		if stage.doubleBuffered() {
			pending, err := spe.DMAAsync(batchBytes)
			if err != nil {
				panic(err)
			}
			for b := 0; b < batches; b++ {
				before := p.Now()
				spe.WaitDMA(p, pending)
				dmaWait += p.Now() - before
				if b+1 < batches {
					pending, err = spe.DMAAsync(batchBytes)
					if err != nil {
						panic(err)
					}
				}
				spe.Compute(p, computePerBatch)
			}
		} else {
			for b := 0; b < batches; b++ {
				before := p.Now()
				if err := spe.DMA(p, batchBytes); err != nil {
					panic(err)
				}
				dmaWait += p.Now() - before
				spe.Compute(p, computePerBatch)
			}
		}
		rep.ComputeCycles = p.Now() - computeStart - dmaWait
		rep.DMAWaitCycles = dmaWait
		done.Signal()
	})

	// The PPE side: pay the signal cost, post the start token, wait for
	// completion, pay the completion-signal cost.
	m.Eng.Spawn("ppe-side", func(p *sim.Proc) {
		signal := sim.Time(cc.comm / 2)
		p.Advance(signal)
		if stage.directComm() {
			m.DirectSignals++
		} else {
			m.MailboxSends++
		}
		spe.Mailbox.Send(p, "start")
		done.Wait(p)
		p.Advance(signal)
		rep.SignalCycles = 2 * signal
	})

	if err := m.Eng.Run(); err != nil {
		return nil, err
	}
	rep.TotalCycles = m.Eng.Now()
	return rep, nil
}
