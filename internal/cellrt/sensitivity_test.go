package cellrt

import (
	"testing"

	"raxmlcell/internal/cell"
	"raxmlcell/internal/workload"
)

// TestCostModelSensitivity perturbs every calibrated cost constant by ±25%
// and checks that the paper's qualitative conclusions survive: the naive
// offload stays a slowdown, the optimization sequence stays monotone, and
// the final port still beats the PPE baseline. This guards against the
// reproduction being a knife-edge artifact of the calibration.
func TestCostModelSensitivity(t *testing.T) {
	prof := workload.Profile42SC()
	params := cell.DefaultParams()

	perturbations := []struct {
		name  string
		apply func(*cell.CostModel, float64)
	}{
		{"SPEFlopScalar", func(c *cell.CostModel, f float64) { c.SPEFlopScalar *= f }},
		{"SPEFlopVector", func(c *cell.CostModel, f float64) { c.SPEFlopVector *= f }},
		{"SPEExpLibm", func(c *cell.CostModel, f float64) { c.SPEExpLibm *= f }},
		{"SPEExpSDK", func(c *cell.CostModel, f float64) { c.SPEExpSDK *= f }},
		{"SPECondScalar", func(c *cell.CostModel, f float64) { c.SPECondScalar *= f }},
		{"SPECondVector", func(c *cell.CostModel, f float64) { c.SPECondVector *= f }},
		{"PPEFlop", func(c *cell.CostModel, f float64) { c.PPEFlop *= f }},
		{"MailboxRoundTrip", func(c *cell.CostModel, f float64) { c.MailboxRoundTrip *= f }},
		{"DirectRoundTrip", func(c *cell.CostModel, f float64) { c.DirectRoundTrip *= f }},
		{"DMABatchStartup", func(c *cell.CostModel, f float64) { c.DMABatchStartup *= f }},
		{"ContextSwitch", func(c *cell.CostModel, f float64) { c.ContextSwitch *= f }},
		{"LLPBarrier", func(c *cell.CostModel, f float64) { c.LLPBarrier *= f }},
	}

	for _, p := range perturbations {
		for _, factor := range []float64{0.75, 1.25} {
			cm := cell.DefaultCostModel()
			p.apply(&cm, factor)

			var times [NumStages]float64
			for stage := StagePPEOnly; stage < NumStages; stage++ {
				rep, err := Run(prof, cm, params, Config{
					Stage: stage, Scheduler: SchedNaive, Workers: 1, Searches: 1,
				})
				if err != nil {
					t.Fatalf("%s x%.2f: %v", p.name, factor, err)
				}
				times[stage] = rep.Seconds
			}
			if times[StageNaiveOffload] <= times[StagePPEOnly] {
				t.Errorf("%s x%.2f: naive offload no longer a slowdown (%.1f vs %.1f)",
					p.name, factor, times[StageNaiveOffload], times[StagePPEOnly])
			}
			for s := StageSDKExp; s < NumStages; s++ {
				// Allow tiny non-monotonicity only for the constant whose
				// perturbation directly shrinks that stage's gain to zero.
				if times[s] > times[s-1]*1.001 {
					t.Errorf("%s x%.2f: stage %v (%.2f) regressed vs %v (%.2f)",
						p.name, factor, s, times[s], s-1, times[s-1])
				}
			}
			if times[StageAllOffloaded] >= times[StagePPEOnly] {
				t.Errorf("%s x%.2f: final port no longer beats the PPE", p.name, factor)
			}

			mgps, err := Run(prof, cm, params, Config{
				Stage: StageAllOffloaded, Scheduler: SchedMGPS, Searches: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if mgps.Seconds >= times[StageAllOffloaded] {
				t.Errorf("%s x%.2f: MGPS (%.2f) no longer beats the single-SPE port (%.2f)",
					p.name, factor, mgps.Seconds, times[StageAllOffloaded])
			}
		}
	}
}
