package cellrt

import (
	"math"
	"testing"

	"raxmlcell/internal/cell"
	"raxmlcell/internal/workload"
)

// TestEpisodeGranularityRobust validates the simulation's discretization:
// the makespan must be insensitive to the episode count (the scheduling
// quantum), otherwise the reproduced tables would be artifacts of an
// arbitrary parameter rather than of the modeled machine.
func TestEpisodeGranularityRobust(t *testing.T) {
	prof := workload.Profile42SC()
	cm := cell.DefaultCostModel()
	params := cell.DefaultParams()

	cases := []Config{
		{Stage: StageNaiveOffload, Scheduler: SchedNaive, Workers: 2, Searches: 4},
		{Stage: StageAllOffloaded, Scheduler: SchedNaive, Workers: 2, Searches: 4},
		{Stage: StageAllOffloaded, Scheduler: SchedMGPS, Searches: 8},
		{Stage: StageAllOffloaded, Scheduler: SchedEDTLP, Workers: 8, Searches: 8},
	}
	for _, base := range cases {
		ref := 0.0
		for _, episodes := range []int{60, 150, 400} {
			cfg := base
			cfg.Episodes = episodes
			rep, err := Run(prof, cm, params, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ref == 0 {
				ref = rep.Seconds
				continue
			}
			if dev := math.Abs(rep.Seconds-ref) / ref; dev > 0.06 {
				t.Errorf("%v/%v: episodes=%d gives %.2fs, reference %.2fs (%.1f%% drift)",
					base.Stage, base.Scheduler, episodes, rep.Seconds, ref, 100*dev)
			}
		}
	}
}

// TestSMTFactorVisible verifies the PPE contention model: the same total
// workload takes ~41% longer per search when two workers share the PPE
// than when one runs alone (the paper's Table 1a column structure).
func TestSMTFactorVisible(t *testing.T) {
	prof := workload.Profile42SC()
	cm := cell.DefaultCostModel()
	params := cell.DefaultParams()

	one, err := Run(prof, cm, params, Config{
		Stage: StagePPEOnly, Scheduler: SchedNaive, Workers: 1, Searches: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Run(prof, cm, params, Config{
		Stage: StagePPEOnly, Scheduler: SchedNaive, Workers: 2, Searches: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two workers split the searches but contend: expected time ratio
	// two/one = (1 search x 1.41) / (2 searches x 1.0) = 0.705.
	ratio := two.Seconds / one.Seconds
	if math.Abs(ratio-cm.PPESMTFactor/2) > 0.02 {
		t.Errorf("SMT scaling ratio = %.3f, want ~%.3f", ratio, cm.PPESMTFactor/2)
	}
}
