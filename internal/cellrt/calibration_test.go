package cellrt

import (
	"fmt"
	"testing"

	"raxmlcell/internal/cell"
	"raxmlcell/internal/workload"
)

// paperTables holds the published execution times (seconds) for the 42_SC
// input: Tables 1a through 7 are rows of (workers, bootstraps) = (1,1),
// (2,8), (2,16), (2,32); Table 8 is MGPS at 1, 8, 16, 32 bootstraps.
var paperStageTimes = map[Stage][4]float64{
	StagePPEOnly:      {36.9, 207.67, 427.95, 824},
	StageNaiveOffload: {106.37, 459.16, 915.75, 1836.6},
	StageSDKExp:       {62.8, 285.25, 572.92, 1138.5},
	StageVectorCond:   {49.3, 230, 460.43, 917.09},
	StageDoubleBuffer: {47, 220.92, 441.39, 884.47},
	StageVectorFP:     {40.9, 195.7, 393, 800.9},
	StageDirectComm:   {39.9, 180.46, 357.08, 712.2},
	StageAllOffloaded: {27.7, 112.41, 224.69, 444.87},
}

var paperMGPS = [4]float64{17.6, 42.18, 84.21, 167.57}

var tableGrid = [4]struct{ workers, bootstraps int }{
	{1, 1}, {2, 8}, {2, 16}, {2, 32},
}

func runStage(t *testing.T, stage Stage, workers, searches int) float64 {
	t.Helper()
	rep, err := Run(workload.Profile42SC(), cell.DefaultCostModel(), cell.DefaultParams(), Config{
		Stage:     stage,
		Scheduler: SchedNaive,
		Workers:   workers,
		Searches:  searches,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep.Seconds
}

func runMGPS(t *testing.T, searches int) float64 {
	t.Helper()
	rep, err := Run(workload.Profile42SC(), cell.DefaultCostModel(), cell.DefaultParams(), Config{
		Stage:     StageAllOffloaded,
		Scheduler: SchedMGPS,
		Searches:  searches,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep.Seconds
}

// TestCalibrationReport prints the full measured-vs-paper grid; it never
// fails, serving as the calibration instrument (tolerance enforcement lives
// in the shape tests below).
func TestCalibrationReport(t *testing.T) {
	for stage := StagePPEOnly; stage < NumStages; stage++ {
		for i, g := range tableGrid {
			got := runStage(t, stage, g.workers, g.bootstraps)
			want := paperStageTimes[stage][i]
			t.Logf("%-14s %dw %2dbs: sim %8.2fs  paper %8.2fs  (%+5.1f%%)",
				stage, g.workers, g.bootstraps, got, want, 100*(got-want)/want)
		}
	}
	for i, bs := range []int{1, 8, 16, 32} {
		got := runMGPS(t, bs)
		want := paperMGPS[i]
		t.Logf("%-14s    %3dbs: sim %8.2fs  paper %8.2fs  (%+5.1f%%)",
			"mgps", bs, got, want, 100*(got-want)/want)
	}
}

// TestStageShape enforces the qualitative structure of Tables 1-7: naive
// offload is a big slowdown, every later stage strictly improves, and the
// fully offloaded port beats the PPE baseline.
func TestStageShape(t *testing.T) {
	var times [NumStages]float64
	for stage := StagePPEOnly; stage < NumStages; stage++ {
		times[stage] = runStage(t, stage, 1, 1)
	}
	if ratio := times[StageNaiveOffload] / times[StagePPEOnly]; ratio < 2 || ratio > 4 {
		t.Errorf("naive offload slowdown = %.2fx, paper ~2.9x", ratio)
	}
	for stage := StageSDKExp; stage < NumStages; stage++ {
		if times[stage] >= times[stage-1] {
			t.Errorf("stage %v (%.2fs) did not improve on %v (%.2fs)",
				stage, times[stage], stage-1, times[stage-1])
		}
	}
	if times[StageAllOffloaded] >= times[StagePPEOnly] {
		t.Errorf("final port (%.2fs) does not beat PPE-only (%.2fs)",
			times[StageAllOffloaded], times[StagePPEOnly])
	}
}

// TestStageTolerance checks every table cell against the paper within a
// documented tolerance band.
func TestStageTolerance(t *testing.T) {
	const tol = 0.20 // 20%: we reproduce shape, not the authors' silicon
	for stage := StagePPEOnly; stage < NumStages; stage++ {
		for i, g := range tableGrid {
			got := runStage(t, stage, g.workers, g.bootstraps)
			want := paperStageTimes[stage][i]
			if rel := (got - want) / want; rel > tol || rel < -tol {
				t.Errorf("%v %dw/%dbs: sim %.2fs vs paper %.2fs (%.1f%% off)",
					stage, g.workers, g.bootstraps, got, want, 100*rel)
			}
		}
	}
	for i, bs := range []int{1, 8, 16, 32} {
		got := runMGPS(t, bs)
		want := paperMGPS[i]
		if rel := (got - want) / want; rel > tol || rel < -tol {
			t.Errorf("mgps %dbs: sim %.2fs vs paper %.2fs (%.1f%% off)", bs, got, want, 100*rel)
		}
	}
}

// TestMGPSShape checks the scheduler-level claims: MGPS beats the naive
// final port, the one-bootstrap case gains from LLP (paper: -36%), and
// scaling in bootstraps is roughly linear beyond one batch.
func TestMGPSShape(t *testing.T) {
	naive1 := runStage(t, StageAllOffloaded, 1, 1)
	mgps1 := runMGPS(t, 1)
	if mgps1 >= naive1 {
		t.Errorf("MGPS 1bs (%.2fs) not faster than naive final port (%.2fs)", mgps1, naive1)
	}
	gain := 1 - mgps1/naive1
	if gain < 0.2 || gain > 0.55 {
		t.Errorf("MGPS 1-bootstrap gain = %.0f%%, paper reports 36%%", 100*gain)
	}
	m8, m16, m32 := runMGPS(t, 8), runMGPS(t, 16), runMGPS(t, 32)
	if r := m16 / m8; r < 1.7 || r > 2.3 {
		t.Errorf("16/8 bootstrap scaling = %.2f, want ~2", r)
	}
	if r := m32 / m16; r < 1.7 || r > 2.3 {
		t.Errorf("32/16 bootstrap scaling = %.2f, want ~2", r)
	}
	_ = fmt.Sprintf
}
