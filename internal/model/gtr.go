package model

import (
	"fmt"
	"math"

	"raxmlcell/internal/bio"
)

// NumStates aliases the DNA state count for readability inside this package.
const NumStates = bio.NumStates

// GTR is the general time-reversible nucleotide substitution model with its
// precomputed eigensystem. Rate order is AC, AG, AT, CG, CT, GT with GT
// conventionally fixed to 1. The rate matrix is normalized so the expected
// substitution rate at equilibrium is 1, making branch lengths expected
// substitutions per site.
type GTR struct {
	Rates [6]float64
	Freqs [NumStates]float64

	// Eigensystem of the normalized Q: Q = V · diag(Lambda) · VInv.
	Lambda [NumStates]float64
	V      [NumStates][NumStates]float64
	VInv   [NumStates][NumStates]float64
}

// rateIndex maps an unordered state pair to its slot in Rates.
func rateIndex(i, j int) int {
	if i > j {
		i, j = j, i
	}
	switch {
	case i == 0 && j == 1:
		return 0 // AC
	case i == 0 && j == 2:
		return 1 // AG
	case i == 0 && j == 3:
		return 2 // AT
	case i == 1 && j == 2:
		return 3 // CG
	case i == 1 && j == 3:
		return 4 // CT
	default:
		return 5 // GT
	}
}

// NewGTR builds and diagonalizes a GTR model.
func NewGTR(rates [6]float64, freqs [NumStates]float64) (*GTR, error) {
	sum := 0.0
	for i, f := range freqs {
		if f <= 0 {
			return nil, fmt.Errorf("model: base frequency %d must be positive, got %g", i, f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-6 {
		return nil, fmt.Errorf("model: base frequencies sum to %g, want 1", sum)
	}
	for i, r := range rates {
		if r <= 0 {
			return nil, fmt.Errorf("model: substitution rate %d must be positive, got %g", i, r)
		}
	}

	g := &GTR{Rates: rates, Freqs: freqs}

	// Build Q with Q_ij = s_ij * pi_j, diagonal = -rowsum, then normalize so
	// that -sum_i pi_i Q_ii = 1.
	var q [NumStates][NumStates]float64
	for i := 0; i < NumStates; i++ {
		rowSum := 0.0
		for j := 0; j < NumStates; j++ {
			if i == j {
				continue
			}
			q[i][j] = rates[rateIndex(i, j)] * freqs[j]
			rowSum += q[i][j]
		}
		q[i][i] = -rowSum
	}
	scale := 0.0
	for i := 0; i < NumStates; i++ {
		scale -= freqs[i] * q[i][i]
	}
	if scale <= 0 {
		return nil, fmt.Errorf("model: degenerate rate matrix")
	}
	for i := range q {
		for j := range q[i] {
			q[i][j] /= scale
		}
	}

	// Symmetrize: B = D Q D^{-1} with D = diag(sqrt(pi)); B_ij =
	// s_ij sqrt(pi_i pi_j) (after normalization), which Jacobi can handle.
	b := make([][]float64, NumStates)
	var sqrtPi, invSqrtPi [NumStates]float64
	for i := 0; i < NumStates; i++ {
		sqrtPi[i] = math.Sqrt(freqs[i])
		invSqrtPi[i] = 1 / sqrtPi[i]
		b[i] = make([]float64, NumStates)
	}
	for i := 0; i < NumStates; i++ {
		for j := 0; j < NumStates; j++ {
			b[i][j] = sqrtPi[i] * q[i][j] * invSqrtPi[j]
		}
	}
	// Force exact symmetry against rounding before Jacobi.
	for i := 0; i < NumStates; i++ {
		for j := i + 1; j < NumStates; j++ {
			m := (b[i][j] + b[j][i]) / 2
			b[i][j], b[j][i] = m, m
		}
	}

	values, vectors, err := JacobiEigen(b)
	if err != nil {
		return nil, err
	}
	// Q = D^{-1} U Λ U^T D, so V = D^{-1} U and VInv = U^T D.
	for i := 0; i < NumStates; i++ {
		g.Lambda[i] = values[i]
		for j := 0; j < NumStates; j++ {
			g.V[i][j] = invSqrtPi[i] * vectors[i][j]
			g.VInv[i][j] = vectors[j][i] * sqrtPi[j]
		}
	}
	return g, nil
}

// JC69 returns the Jukes-Cantor special case (all rates and frequencies
// equal) — useful as an analytically verifiable reference model.
func JC69() *GTR {
	g, err := NewGTR(
		[6]float64{1, 1, 1, 1, 1, 1},
		[NumStates]float64{0.25, 0.25, 0.25, 0.25},
	)
	if err != nil {
		panic("model: JC69 construction failed: " + err.Error())
	}
	return g
}

// TransitionMatrix fills p with P(t·rate) = V·exp(Λ·t·rate)·VInv, the
// substitution probability matrix for a branch of length t under rate
// multiplier rate. This is the "small loop" computation of the paper's
// newview (the per-category transition probability matrices).
func (g *GTR) TransitionMatrix(t, rate float64, p *[NumStates][NumStates]float64) {
	var expl [NumStates]float64
	tr := t * rate
	for k := 0; k < NumStates; k++ {
		expl[k] = math.Exp(g.Lambda[k] * tr)
	}
	for i := 0; i < NumStates; i++ {
		for j := 0; j < NumStates; j++ {
			s := 0.0
			for k := 0; k < NumStates; k++ {
				s += g.V[i][k] * expl[k] * g.VInv[k][j]
			}
			// Clamp tiny negative round-off; probabilities must be >= 0.
			if s < 0 {
				s = 0
			}
			p[i][j] = s
		}
	}
}

// Model couples a GTR substitution model with a rate-heterogeneity model:
// either discrete Gamma (every site averages over Cats) or CAT (PatCat
// assigns each site pattern exactly one of Cats; see NewCATModel). It is
// the unit the likelihood kernels consume.
type Model struct {
	GTR   *GTR
	Alpha float64   // Gamma shape; <= 0 means "no rate heterogeneity"
	Cats  []float64 // per-category rate multipliers, mean 1
	// PatCat, when non-nil, switches the model to CAT semantics:
	// PatCat[pattern] indexes into Cats.
	PatCat []int
}

// NewModel builds a GTR+Γ model with k rate categories. alpha <= 0 disables
// rate heterogeneity (one category at rate 1).
func NewModel(g *GTR, alpha float64, k int) (*Model, error) {
	if g == nil {
		return nil, fmt.Errorf("model: nil GTR")
	}
	if alpha <= 0 || k <= 1 {
		return &Model{GTR: g, Alpha: 0, Cats: []float64{1}}, nil
	}
	cats, err := DiscreteGamma(alpha, k)
	if err != nil {
		return nil, err
	}
	return &Model{GTR: g, Alpha: alpha, Cats: cats}, nil
}

// NumCats returns the number of rate categories.
func (m *Model) NumCats() int { return len(m.Cats) }

// WithAlpha returns a model identical to m but with a new Gamma shape,
// re-discretized over the same category count. Used by the alpha optimizer.
func (m *Model) WithAlpha(alpha float64) (*Model, error) {
	return NewModel(m.GTR, alpha, len(m.Cats))
}
