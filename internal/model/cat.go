package model

import "fmt"

// NewCATModel builds a per-site rate-category (CAT) model: instead of
// averaging every site over the discrete Gamma categories, each site
// pattern is assigned exactly one of the rate multipliers. This is RAxML's
// CAT approximation of rate heterogeneity — the paper's transition-matrix
// loop runs "4-25 iterations ... for each distinct rate category of the CAT
// or Γ models", 25 being RAxML's default CAT category count.
//
// rates lists the category rate multipliers; patCat assigns a category
// index to every site pattern. weights (the pattern multiplicities) are
// used to normalize the rates to a weighted mean of 1, keeping branch
// lengths in expected substitutions per site.
func NewCATModel(g *GTR, rates []float64, patCat []int, weights []int) (*Model, error) {
	if g == nil {
		return nil, fmt.Errorf("model: nil GTR")
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("model: CAT needs at least one rate category")
	}
	if len(patCat) == 0 {
		return nil, fmt.Errorf("model: CAT needs a per-pattern assignment")
	}
	if len(weights) != len(patCat) {
		return nil, fmt.Errorf("model: %d weights for %d patterns", len(weights), len(patCat))
	}
	for i, r := range rates {
		if r <= 0 {
			return nil, fmt.Errorf("model: CAT rate %d = %g must be positive", i, r)
		}
	}
	for i, c := range patCat {
		if c < 0 || c >= len(rates) {
			return nil, fmt.Errorf("model: pattern %d assigned to category %d of %d", i, c, len(rates))
		}
	}
	// Normalize to weighted mean rate 1.
	norm := append([]float64(nil), rates...)
	sum, wsum := 0.0, 0.0
	for i, c := range patCat {
		w := float64(weights[i])
		sum += w * norm[c]
		wsum += w
	}
	if wsum == 0 || sum == 0 {
		return nil, fmt.Errorf("model: degenerate CAT weights")
	}
	scale := wsum / sum
	for i := range norm {
		norm[i] *= scale
	}
	return &Model{GTR: g, Alpha: 0, Cats: norm, PatCat: append([]int(nil), patCat...)}, nil
}

// IsCAT reports whether the model uses per-site rate categories.
func (m *Model) IsCAT() bool { return m.PatCat != nil }
