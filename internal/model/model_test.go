package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegIncGammaPKnownValues(t *testing.T) {
	// P(1,x) = 1 - e^{-x} (exponential CDF).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		got, err := RegIncGammaP(1, x)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-x)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("P(1,%g) = %.15f, want %.15f", x, got, want)
		}
	}
	// P(1/2, x) = erf(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		got, err := RegIncGammaP(0.5, x)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Erf(math.Sqrt(x))
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("P(0.5,%g) = %.15f, want %.15f", x, got, want)
		}
	}
	// Boundaries and errors.
	if v, _ := RegIncGammaP(2, 0); v != 0 {
		t.Error("P(a,0) != 0")
	}
	if _, err := RegIncGammaP(0, 1); err == nil {
		t.Error("a=0 accepted")
	}
	if _, err := RegIncGammaP(1, -1); err == nil {
		t.Error("x<0 accepted")
	}
}

func TestRegIncGammaPMonotone(t *testing.T) {
	f := func(rawA, rawX1, rawX2 uint16) bool {
		a := 0.05 + float64(rawA%1000)/100 // 0.05..10.04
		x1 := float64(rawX1%2000) / 100
		x2 := x1 + 0.01 + float64(rawX2%1000)/100
		p1, err1 := RegIncGammaP(a, x1)
		p2, err2 := RegIncGammaP(a, x2)
		return err1 == nil && err2 == nil && p2 >= p1 && p1 >= 0 && p2 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInvRegIncGammaPRoundTrip(t *testing.T) {
	for _, a := range []float64{0.05, 0.3, 0.5, 1, 2.5, 10, 50} {
		for _, p := range []float64{0.001, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999} {
			x, err := InvRegIncGammaP(a, p)
			if err != nil {
				t.Fatalf("a=%g p=%g: %v", a, p, err)
			}
			back, err := RegIncGammaP(a, x)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(back-p) > 1e-9 {
				t.Errorf("a=%g: P(a, InvP(%g)) = %g", a, p, back)
			}
		}
	}
	if x, _ := InvRegIncGammaP(2, 0); x != 0 {
		t.Error("InvP(a,0) != 0")
	}
	if _, err := InvRegIncGammaP(2, 1); err == nil {
		t.Error("p=1 accepted")
	}
	if _, err := InvRegIncGammaP(-1, 0.5); err == nil {
		t.Error("a<0 accepted")
	}
}

func TestDiscreteGammaMeanOne(t *testing.T) {
	for _, alpha := range []float64{0.1, 0.5, 1, 2, 5, 25} {
		for _, k := range []int{1, 2, 4, 8} {
			rates, err := DiscreteGamma(alpha, k)
			if err != nil {
				t.Fatalf("alpha=%g k=%d: %v", alpha, k, err)
			}
			if len(rates) != k {
				t.Fatalf("len = %d", len(rates))
			}
			sum := 0.0
			for i, r := range rates {
				if r <= 0 {
					t.Errorf("alpha=%g k=%d: rate[%d] = %g", alpha, k, i, r)
				}
				if i > 0 && rates[i] <= rates[i-1] {
					t.Errorf("alpha=%g k=%d: rates not increasing: %v", alpha, k, rates)
				}
				sum += r
			}
			if math.Abs(sum/float64(k)-1) > 1e-9 {
				t.Errorf("alpha=%g k=%d: mean rate = %g, want 1", alpha, k, sum/float64(k))
			}
		}
	}
}

func TestDiscreteGammaSpread(t *testing.T) {
	// Smaller alpha means more heterogeneity: wider category spread.
	lo, err := DiscreteGamma(0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := DiscreteGamma(20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if lo[3]-lo[0] <= hi[3]-hi[0] {
		t.Errorf("spread(alpha=0.2)=%g not wider than spread(alpha=20)=%g", lo[3]-lo[0], hi[3]-hi[0])
	}
	if _, err := DiscreteGamma(0, 4); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := DiscreteGamma(1, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestJacobiIdentityAndDiagonal(t *testing.T) {
	vals, vecs, err := JacobiEigen([][]float64{{3, 0}, {0, -1}})
	if err != nil {
		t.Fatal(err)
	}
	found := map[float64]bool{}
	for _, v := range vals {
		found[math.Round(v)] = true
	}
	if !found[3] || !found[-1] {
		t.Errorf("eigenvalues = %v", vals)
	}
	_ = vecs
}

func TestJacobiReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a[i][j], a[j][i] = v, v
			}
		}
		vals, vecs, err := JacobiEigen(a)
		if err != nil {
			return false
		}
		// Check A·v_k = λ_k·v_k for each eigenpair.
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				av := 0.0
				for j := 0; j < n; j++ {
					av += a[i][j] * vecs[j][k]
				}
				if math.Abs(av-vals[k]*vecs[i][k]) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestJacobiErrors(t *testing.T) {
	if _, _, err := JacobiEigen(nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, _, err := JacobiEigen([][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	if _, _, err := JacobiEigen([][]float64{{1, 2}}); err == nil {
		t.Error("non-square matrix accepted")
	}
}

func TestGTRJukesCantorAnalytic(t *testing.T) {
	g := JC69()
	var p [4][4]float64
	for _, tt := range []float64{0.01, 0.1, 0.5, 1, 3} {
		g.TransitionMatrix(tt, 1, &p)
		e := math.Exp(-4.0 * tt / 3.0)
		wantDiag := 0.25 + 0.75*e
		wantOff := 0.25 - 0.25*e
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				want := wantOff
				if i == j {
					want = wantDiag
				}
				if math.Abs(p[i][j]-want) > 1e-10 {
					t.Fatalf("t=%g: P[%d][%d] = %.12f, want %.12f", tt, i, j, p[i][j], want)
				}
			}
		}
	}
}

func randomGTR(rng *rand.Rand) *GTR {
	var rates [6]float64
	for i := range rates {
		rates[i] = 0.2 + 4*rng.Float64()
	}
	var freqs [4]float64
	sum := 0.0
	for i := range freqs {
		freqs[i] = 0.1 + rng.Float64()
		sum += freqs[i]
	}
	for i := range freqs {
		freqs[i] /= sum
	}
	g, err := NewGTR(rates, freqs)
	if err != nil {
		panic(err)
	}
	return g
}

func TestGTRTransitionMatrixProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		g := randomGTR(rng)
		var p [4][4]float64
		for _, tt := range []float64{1e-8, 0.05, 0.3, 1.0, 5.0} {
			g.TransitionMatrix(tt, 1, &p)
			for i := 0; i < 4; i++ {
				row := 0.0
				for j := 0; j < 4; j++ {
					if p[i][j] < 0 || p[i][j] > 1+1e-9 {
						t.Fatalf("P[%d][%d] = %g out of [0,1]", i, j, p[i][j])
					}
					row += p[i][j]
				}
				if math.Abs(row-1) > 1e-9 {
					t.Fatalf("row %d sums to %.12f at t=%g", i, row, tt)
				}
			}
			// Detailed balance: pi_i P_ij = pi_j P_ji (time reversibility).
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					if math.Abs(g.Freqs[i]*p[i][j]-g.Freqs[j]*p[j][i]) > 1e-9 {
						t.Fatalf("detailed balance violated at (%d,%d), t=%g", i, j, tt)
					}
				}
			}
		}
		// t -> 0 gives identity; t -> inf gives stationary rows.
		g.TransitionMatrix(1e-12, 1, &p)
		for i := 0; i < 4; i++ {
			if math.Abs(p[i][i]-1) > 1e-6 {
				t.Fatalf("P(0) not identity: P[%d][%d]=%g", i, i, p[i][i])
			}
		}
		g.TransitionMatrix(500, 1, &p)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if math.Abs(p[i][j]-g.Freqs[j]) > 1e-6 {
					t.Fatalf("P(inf)[%d][%d] = %g, want pi=%g", i, j, p[i][j], g.Freqs[j])
				}
			}
		}
	}
}

func TestGTRChapmanKolmogorov(t *testing.T) {
	// P(s+t) = P(s)·P(t).
	rng := rand.New(rand.NewSource(99))
	g := randomGTR(rng)
	var ps, pt, pst [4][4]float64
	s, tt := 0.17, 0.42
	g.TransitionMatrix(s, 1, &ps)
	g.TransitionMatrix(tt, 1, &pt)
	g.TransitionMatrix(s+tt, 1, &pst)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			prod := 0.0
			for k := 0; k < 4; k++ {
				prod += ps[i][k] * pt[k][j]
			}
			if math.Abs(prod-pst[i][j]) > 1e-10 {
				t.Fatalf("Chapman-Kolmogorov violated at (%d,%d): %g vs %g", i, j, prod, pst[i][j])
			}
		}
	}
}

func TestGTRRateMultiplier(t *testing.T) {
	// P(t, rate r) == P(t*r, rate 1).
	g := JC69()
	var a, b [4][4]float64
	g.TransitionMatrix(0.3, 2.5, &a)
	g.TransitionMatrix(0.75, 1, &b)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(a[i][j]-b[i][j]) > 1e-12 {
				t.Fatalf("rate multiplier mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewGTRValidation(t *testing.T) {
	ones := [6]float64{1, 1, 1, 1, 1, 1}
	if _, err := NewGTR(ones, [4]float64{0.5, 0.5, 0.5, 0.5}); err == nil {
		t.Error("frequencies summing to 2 accepted")
	}
	if _, err := NewGTR(ones, [4]float64{1, 0, 0, 0}); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := NewGTR([6]float64{1, 1, -1, 1, 1, 1}, [4]float64{0.25, 0.25, 0.25, 0.25}); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestNewModel(t *testing.T) {
	g := JC69()
	m, err := NewModel(g, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCats() != 4 {
		t.Errorf("cats = %d", m.NumCats())
	}
	m2, err := m.WithAlpha(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Alpha != 2.0 || m2.NumCats() != 4 || m.Alpha != 0.5 {
		t.Error("WithAlpha wrong or mutated original")
	}
	flat, err := NewModel(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if flat.NumCats() != 1 || flat.Cats[0] != 1 {
		t.Errorf("alpha=0 model cats = %v", flat.Cats)
	}
	if _, err := NewModel(nil, 1, 4); err == nil {
		t.Error("nil GTR accepted")
	}
}

func TestEigenDecompositionConsistency(t *testing.T) {
	// V · VInv must be the identity.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		g := randomGTR(rng)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				s := 0.0
				for k := 0; k < 4; k++ {
					s += g.V[i][k] * g.VInv[k][j]
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(s-want) > 1e-9 {
					t.Fatalf("V·VInv[%d][%d] = %g", i, j, s)
				}
			}
		}
		// One eigenvalue must be ~0 (the stationary mode), others negative.
		zero, neg := 0, 0
		for _, l := range g.Lambda {
			if math.Abs(l) < 1e-9 {
				zero++
			} else if l < 0 {
				neg++
			}
		}
		if zero != 1 || neg != 3 {
			t.Fatalf("eigenvalue signature: %v", g.Lambda)
		}
	}
}
