package model

import (
	"fmt"
	"math"
)

// JacobiEigen diagonalizes a symmetric n×n matrix with the cyclic Jacobi
// rotation method: it returns the eigenvalues and a matrix whose columns are
// the corresponding orthonormal eigenvectors. The input matrix is not
// modified. Jacobi is exact enough and unconditionally stable for the small
// (4×4) matrices the GTR model produces.
func JacobiEigen(a [][]float64) (values []float64, vectors [][]float64, err error) {
	n := len(a)
	if n == 0 {
		return nil, nil, fmt.Errorf("model: empty matrix")
	}
	m := make([][]float64, n)
	v := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, nil, fmt.Errorf("model: matrix not square (row %d has %d cols)", i, len(a[i]))
		}
		m[i] = append([]float64(nil), a[i]...)
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a[i][j]-a[j][i]) > 1e-9*(1+math.Abs(a[i][j])) {
				return nil, nil, fmt.Errorf("model: matrix not symmetric at (%d,%d): %g vs %g", i, j, a[i][j], a[j][i])
			}
		}
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-30 {
			values = make([]float64, n)
			for i := range values {
				values[i] = m[i][i]
			}
			return values, v, nil
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-300 {
					continue
				}
				// Compute the Jacobi rotation that zeroes m[p][q].
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				tau := s / (1 + c)
				// Apply rotation to m (both sides) and accumulate into v.
				mpq := m[p][q]
				m[p][p] -= t * mpq
				m[q][q] += t * mpq
				m[p][q] = 0
				m[q][p] = 0
				for i := 0; i < n; i++ {
					if i != p && i != q {
						mip, miq := m[i][p], m[i][q]
						m[i][p] = mip - s*(miq+tau*mip)
						m[i][q] = miq + s*(mip-tau*miq)
						m[p][i] = m[i][p]
						m[q][i] = m[i][q]
					}
					vip, viq := v[i][p], v[i][q]
					v[i][p] = vip - s*(viq+tau*vip)
					v[i][q] = viq + s*(vip-tau*viq)
				}
			}
		}
	}
	return nil, nil, fmt.Errorf("model: Jacobi did not converge in %d sweeps", maxSweeps)
}
