// Package model implements the substitution model machinery of the
// reproduction: the GTR nucleotide model with its eigendecomposition, the
// discrete Gamma model of rate heterogeneity (Yang 1994), and a per-site
// rate-category (CAT-style) approximation. All special-function numerics
// (regularized incomplete gamma and its inverse) are implemented here from
// scratch on top of math.Lgamma, since the module is stdlib-only.
package model

import (
	"fmt"
	"math"
)

// gammaEps is the convergence tolerance of the incomplete-gamma series and
// continued-fraction expansions.
const gammaEps = 1e-14

// maxGammaIter bounds the expansion loops.
const maxGammaIter = 500

// RegIncGammaP computes the regularized lower incomplete gamma function
// P(a,x) = γ(a,x)/Γ(a) using the series expansion for x < a+1 and the
// continued fraction for x >= a+1 (Numerical Recipes gser/gcf scheme).
func RegIncGammaP(a, x float64) (float64, error) {
	if a <= 0 {
		return 0, fmt.Errorf("model: RegIncGammaP requires a > 0, got %g", a)
	}
	if x < 0 {
		return 0, fmt.Errorf("model: RegIncGammaP requires x >= 0, got %g", x)
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	q, err := gammaContinuedFraction(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

// gammaSeries evaluates P(a,x) by its power series (converges for x < a+1).
func gammaSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxGammaIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, fmt.Errorf("model: incomplete gamma series did not converge (a=%g x=%g)", a, x)
}

// gammaContinuedFraction evaluates Q(a,x) = 1 - P(a,x) by the Lentz
// continued fraction (converges for x >= a+1).
func gammaContinuedFraction(a, x float64) (float64, error) {
	const fpmin = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= maxGammaIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, fmt.Errorf("model: incomplete gamma continued fraction did not converge (a=%g x=%g)", a, x)
}

// InvRegIncGammaP returns x such that P(a,x) = p, via bracketed bisection
// polished with Newton steps. It is robust for the full parameter range used
// by the Gamma rate model (a in ~[0.01, 100]).
func InvRegIncGammaP(a, p float64) (float64, error) {
	if a <= 0 {
		return 0, fmt.Errorf("model: InvRegIncGammaP requires a > 0, got %g", a)
	}
	if p < 0 || p >= 1 {
		return 0, fmt.Errorf("model: InvRegIncGammaP requires 0 <= p < 1, got %g", p)
	}
	if p == 0 {
		return 0, nil
	}
	// Bracket the root in x, then bisect in log-space: the root can be
	// extremely small for small shape parameters (x ~ 1e-30 for a=0.05,
	// p=0.001), where linear bisection and Newton both stall.
	hi := math.Max(1.0, a)
	for i := 0; ; i++ {
		v, err := RegIncGammaP(a, hi)
		if err != nil {
			return 0, err
		}
		if v > p {
			break
		}
		hi *= 2
		if i > 200 {
			return 0, fmt.Errorf("model: InvRegIncGammaP failed to bracket (a=%g p=%g)", a, p)
		}
	}
	uLo, uHi := math.Log(1e-300), math.Log(hi)
	for i := 0; i < 300; i++ {
		u := (uLo + uHi) / 2
		x := math.Exp(u)
		v, err := RegIncGammaP(a, x)
		if err != nil {
			return 0, err
		}
		if math.Abs(v-p) <= 1e-13 {
			return x, nil
		}
		if v > p {
			uHi = u
		} else {
			uLo = u
		}
		if uHi-uLo < 1e-15 {
			return x, nil
		}
	}
	return math.Exp((uLo + uHi) / 2), nil
}

// DiscreteGamma returns the k mean-rate multipliers of the discrete Gamma
// model with shape alpha (Yang 1994, "mean" method): the Gamma(alpha,
// rate=alpha) distribution (mean 1) is cut into k equal-probability
// intervals and each category's rate is the conditional mean within its
// interval, scaled so the category average is exactly 1.
func DiscreteGamma(alpha float64, k int) ([]float64, error) {
	if k <= 0 {
		return nil, fmt.Errorf("model: DiscreteGamma requires k > 0, got %d", k)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("model: DiscreteGamma requires alpha > 0, got %g", alpha)
	}
	if k == 1 {
		return []float64{1}, nil
	}
	// Interval boundaries in the "y = alpha * x" variable where the CDF is
	// P(alpha, y).
	bounds := make([]float64, k+1)
	bounds[k] = math.Inf(1)
	for i := 1; i < k; i++ {
		y, err := InvRegIncGammaP(alpha, float64(i)/float64(k))
		if err != nil {
			return nil, err
		}
		bounds[i] = y
	}
	// E[X · 1{interval}] = P(alpha+1, y_hi) - P(alpha+1, y_lo) for
	// X ~ Gamma(alpha, rate alpha).
	rates := make([]float64, k)
	prev := 0.0
	for i := 0; i < k; i++ {
		var cur float64
		if math.IsInf(bounds[i+1], 1) {
			cur = 1
		} else {
			var err error
			cur, err = RegIncGammaP(alpha+1, bounds[i+1])
			if err != nil {
				return nil, err
			}
		}
		rates[i] = float64(k) * (cur - prev)
		prev = cur
	}
	// Normalize exactly so the category mean is 1 (guards numerical drift).
	total := 0.0
	for _, r := range rates {
		total += r
	}
	for i := range rates {
		rates[i] *= float64(k) / total
	}
	return rates, nil
}
