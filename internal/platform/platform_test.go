package platform

import "testing"

func TestMakespanBasics(t *testing.T) {
	p := Platform{Name: "test", Cores: 2, ThreadsPerCor: 2, SearchSeconds: 10, SMTFactor: 1.2}
	cases := []struct {
		b    int
		want float64
	}{
		{1, 10}, // one core, solo
		{2, 10}, // one per core, solo
		{3, 12}, // SMT engaged: ceil(3/4)=1 round at penalty
		{4, 12}, // 4 contexts, one round each
		{8, 24}, // two rounds
		{128, 32 * 12},
	}
	for _, c := range cases {
		got, err := p.Makespan(c.b)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Makespan(%d) = %v, want %v", c.b, got, c.want)
		}
	}
	if _, err := p.Makespan(0); err == nil {
		t.Error("0 searches accepted")
	}
}

func TestMakespanMonotone(t *testing.T) {
	for _, p := range []Platform{Xeon2GHzPair(), Power5()} {
		prev := 0.0
		for b := 1; b <= 128; b *= 2 {
			got, err := p.Makespan(b)
			if err != nil {
				t.Fatal(err)
			}
			if got < prev {
				t.Errorf("%s: makespan decreased at b=%d: %v < %v", p.Name, b, got, prev)
			}
			prev = got
		}
	}
}

func TestPaperRelativeOrdering(t *testing.T) {
	// Figure 3's machine ordering: Xeon slowest, Power5 in the middle.
	xeon, p5 := Xeon2GHzPair(), Power5()
	for _, b := range []int{1, 8, 16, 32, 64, 128} {
		x, err := xeon.Makespan(b)
		if err != nil {
			t.Fatal(err)
		}
		p, err := p5.Makespan(b)
		if err != nil {
			t.Fatal(err)
		}
		if x <= p {
			t.Errorf("b=%d: Xeon (%.1fs) not slower than Power5 (%.1fs)", b, x, p)
		}
		if ratio := x / p; ratio < 1.5 || ratio > 3 {
			t.Errorf("b=%d: Xeon/Power5 = %.2f, expected ~2", b, ratio)
		}
	}
}

func TestContextsAndThroughput(t *testing.T) {
	p := Power5()
	if p.Contexts() != 4 {
		t.Errorf("Power5 contexts = %d", p.Contexts())
	}
	if p.Throughput() <= 0 {
		t.Error("throughput not positive")
	}
	x := Xeon2GHzPair()
	if x.Throughput() >= p.Throughput() {
		t.Error("Xeon throughput should be below Power5's")
	}
}
