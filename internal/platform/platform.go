// Package platform provides the analytic execution-time models for the two
// comparison machines of the paper's Section 6 — a 2-way SMP of Intel
// Pentium 4 Xeons with HyperThreading (2 GHz) and an IBM Power5 (1.65 GHz,
// two cores, two SMT threads each) — used to regenerate Figure 3.
//
// Both machines run the MPI master-worker code: B independent tree searches
// spread over the machine's hardware contexts. The models capture the two
// effects that determine the figure's shape: per-search single-thread time
// and the SMT slowdown when both contexts of a core are busy. Absolute
// single-thread times are calibrated so the published cross-machine ratios
// hold (Cell ~9-10% faster than Power5, more than 2x faster than the Xeon
// pair).
package platform

import (
	"fmt"
	"math"
)

// Platform is one comparison machine.
type Platform struct {
	Name          string
	Cores         int     // physical cores across the machine
	ThreadsPerCor int     // SMT contexts per core
	SearchSeconds float64 // one tree search, single-threaded, no contention
	SMTFactor     float64 // per-search slowdown when a core runs 2 contexts
}

// Xeon2GHzPair models the paper's Xeon platform: two 2 GHz Pentium 4 Xeon
// processors with HyperThreading on a 4-way Dell PowerEdge 6650 (the paper
// deliberately gives the Xeon two processors, "favoring the Xeon platform").
func Xeon2GHzPair() Platform {
	return Platform{
		Name:          "Intel Xeon (2x 2GHz, HT)",
		Cores:         2,
		ThreadsPerCor: 2,
		SearchSeconds: 40.0,
		SMTFactor:     1.13,
	}
}

// Power5 models the 1.65 GHz dual-core, 2-way-SMT IBM Power5.
func Power5() Platform {
	return Platform{
		Name:          "IBM Power5 (2 cores, 2x SMT, 1.65GHz)",
		Cores:         2,
		ThreadsPerCor: 2,
		SearchSeconds: 19.5,
		SMTFactor:     1.16,
	}
}

// Contexts returns the machine's total hardware thread count.
func (p Platform) Contexts() int { return p.Cores * p.ThreadsPerCor }

// Makespan estimates the wall-clock seconds to complete b independent
// searches with the master-worker scheme: searches are dealt evenly over
// the hardware contexts; a core running both of its contexts executes each
// at the SMT penalty. Single-context cores run at full speed, so small b
// avoids the penalty entirely.
func (p Platform) Makespan(b int) (float64, error) {
	if b <= 0 {
		return 0, fmt.Errorf("platform: %d searches", b)
	}
	contexts := p.Contexts()
	if b <= p.Cores {
		// One search per core: no SMT sharing; one full round each.
		return p.SearchSeconds, nil
	}
	// Greedy deal over all contexts; every active pair pays the SMT factor.
	perContext := int(math.Ceil(float64(b) / float64(contexts)))
	return float64(perContext) * p.SearchSeconds * p.SMTFactor, nil
}

// Throughput returns searches per hour at saturation, a convenience for
// example programs.
func (p Platform) Throughput() float64 {
	return 3600 / (p.SearchSeconds * p.SMTFactor) * float64(p.Contexts())
}
