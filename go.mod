module raxmlcell

go 1.24
