// Package raxmlcell is a from-scratch Go reproduction of "RAxML-Cell:
// Parallel Phylogenetic Tree Inference on the Cell Broadband Engine"
// (Blagojevic, Stamatakis, Antonopoulos, Nikolopoulos — IPPS 2007).
//
// The repository contains two cooperating systems:
//
//   - A real maximum-likelihood phylogenetic inference engine (RAxML's
//     algorithmic core): GTR+Γ likelihood kernels (newview, makenewz,
//     evaluate) with numerical scaling, randomized stepwise-addition
//     parsimony starting trees, lazy-SPR hill climbing, non-parametric
//     bootstrapping, and a master-worker runtime. See internal/core for the
//     top-level API and examples/ for runnable programs.
//
//   - A discrete-event simulator of the Cell Broadband Engine (PPE, eight
//     SPEs with 256 KB local stores, MFC DMA, EIB, mailboxes) plus the
//     paper's port runtime: seven staged optimizations and the
//     EDTLP/LLP/MGPS schedulers, reproducing Tables 1-8 and Figure 3 of the
//     paper's evaluation. See internal/cell, internal/cellrt and
//     internal/bench; cmd/benchtables regenerates every table.
//
// The root package holds the repository-level benchmarks (bench_test.go),
// one per published table and figure, plus ablation benchmarks for the
// design choices called out in DESIGN.md.
package raxmlcell
